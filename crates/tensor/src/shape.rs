//! Shapes: dimensioning, strides and index arithmetic for 1D–4D tensors.

use crate::ShapeError;
use std::fmt;

/// Maximum number of dimensions supported (matches Z-checker's 1D–4D range).
pub const MAX_NDIM: usize = 4;

/// A named axis of a tensor.
///
/// The paper's `(h, w, l)` corresponds to `(X, Y, Z)` here, with `X`
/// fastest-varying in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Fastest-varying (contiguous) axis.
    X,
    /// Second axis.
    Y,
    /// Third axis; z-slabs (`(x,y)` planes) are contiguous.
    Z,
    /// Fourth axis (e.g. time or ensemble member).
    W,
}

impl Axis {
    /// Axis index in `[0, MAX_NDIM)`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
            Axis::W => 3,
        }
    }

    /// All axes in memory order.
    pub const ALL: [Axis; MAX_NDIM] = [Axis::X, Axis::Y, Axis::Z, Axis::W];
}

/// The extents of a tensor along each axis.
///
/// Internally always stores `MAX_NDIM` extents; trailing axes of a
/// lower-dimensional shape have extent 1 but are not counted in
/// [`Shape::ndim`]. Empty extents (0) are rejected at construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_NDIM],
    ndim: usize,
}

impl Shape {
    /// 1D shape of `nx` elements.
    #[inline]
    pub fn d1(nx: usize) -> Self {
        Self::new(&[nx]).expect("extent must be non-zero")
    }

    /// 2D shape `nx × ny`.
    #[inline]
    pub fn d2(nx: usize, ny: usize) -> Self {
        Self::new(&[nx, ny]).expect("extents must be non-zero")
    }

    /// 3D shape `nx × ny × nz`.
    #[inline]
    pub fn d3(nx: usize, ny: usize, nz: usize) -> Self {
        Self::new(&[nx, ny, nz]).expect("extents must be non-zero")
    }

    /// 4D shape `nx × ny × nz × nw`.
    #[inline]
    pub fn d4(nx: usize, ny: usize, nz: usize, nw: usize) -> Self {
        Self::new(&[nx, ny, nz, nw]).expect("extents must be non-zero")
    }

    /// Construct from a slice of 1–4 extents (fastest-varying first).
    ///
    /// Returns [`ShapeError::ZeroExtent`] if any extent is zero and
    /// [`ShapeError::TooManyDims`] for more than [`MAX_NDIM`] extents.
    pub fn new(extents: &[usize]) -> Result<Self, ShapeError> {
        if extents.is_empty() || extents.len() > MAX_NDIM {
            return Err(ShapeError::TooManyDims(extents.len()));
        }
        if extents.contains(&0) {
            return Err(ShapeError::ZeroExtent);
        }
        let mut dims = [1usize; MAX_NDIM];
        dims[..extents.len()].copy_from_slice(extents);
        Ok(Shape {
            dims,
            ndim: extents.len(),
        })
    }

    /// Number of *declared* dimensions (1–4).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Extent along axis `a` (1 for axes beyond `ndim`).
    #[inline]
    pub fn extent(&self, a: Axis) -> usize {
        self.dims[a.index()]
    }

    /// Extent along the x axis.
    #[inline]
    pub fn nx(&self) -> usize {
        self.dims[0]
    }

    /// Extent along the y axis.
    #[inline]
    pub fn ny(&self) -> usize {
        self.dims[1]
    }

    /// Extent along the z axis.
    #[inline]
    pub fn nz(&self) -> usize {
        self.dims[2]
    }

    /// Extent along the w axis.
    #[inline]
    pub fn nw(&self) -> usize {
        self.dims[3]
    }

    /// All extents in memory order (trailing 1s for unused axes).
    #[inline]
    pub fn dims(&self) -> [usize; MAX_NDIM] {
        self.dims
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// A shape is never empty (zero extents are rejected), so this is
    /// always `false`; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of elements in one z-slab (an `(x, y)` plane).
    #[inline]
    pub fn slab_len(&self) -> usize {
        self.nx() * self.ny()
    }

    /// Strides in elements for each axis (x stride is always 1).
    #[inline]
    pub fn strides(&self) -> [usize; MAX_NDIM] {
        let [nx, ny, nz, _] = self.dims;
        [1, nx, nx * ny, nx * ny * nz]
    }

    /// Linear index of the coordinate `[x, y, z, w]`.
    ///
    /// Debug builds assert the coordinate is in range.
    #[inline]
    pub fn linear(&self, idx: [usize; MAX_NDIM]) -> usize {
        debug_assert!(
            idx.iter().zip(self.dims.iter()).all(|(i, d)| i < d),
            "index {idx:?} out of bounds for shape {self}"
        );
        let [sx, sy, sz, sw] = self.strides();
        idx[0] * sx + idx[1] * sy + idx[2] * sz + idx[3] * sw
    }

    /// Inverse of [`Shape::linear`]: the coordinate of a linear offset.
    #[inline]
    pub fn unlinear(&self, mut lin: usize) -> [usize; MAX_NDIM] {
        debug_assert!(
            lin < self.len(),
            "offset {lin} out of bounds for shape {self}"
        );
        let [nx, ny, nz, _] = self.dims;
        let x = lin % nx;
        lin /= nx;
        let y = lin % ny;
        lin /= ny;
        let z = lin % nz;
        let w = lin / nz;
        [x, y, z, w]
    }

    /// Whether the coordinate lies inside the shape.
    #[inline]
    pub fn contains(&self, idx: [usize; MAX_NDIM]) -> bool {
        idx.iter().zip(self.dims.iter()).all(|(i, d)| i < d)
    }

    /// Shape with every extent divided by `factor` (clamped to at least 1),
    /// keeping the dimensionality. Used by the benchmark harness to run the
    /// paper's dataset shapes at reduced scale.
    pub fn scaled_down(&self, factor: usize) -> Shape {
        assert!(factor > 0, "scale factor must be positive");
        let mut dims = self.dims;
        for (i, d) in dims.iter_mut().enumerate() {
            if i < self.ndim {
                *d = (*d / factor).max(1);
            }
        }
        Shape {
            dims,
            ndim: self.ndim,
        }
    }

    /// Shape with each axis divided by its own factor (clamped to ≥ 1).
    pub fn scaled_down_axes(&self, factors: [usize; MAX_NDIM]) -> Shape {
        assert!(
            factors.iter().all(|&f| f > 0),
            "scale factors must be positive"
        );
        let mut dims = self.dims;
        for (i, d) in dims.iter_mut().enumerate() {
            if i < self.ndim {
                *d = (*d / factors[i]).max(1);
            }
        }
        Shape {
            dims,
            ndim: self.ndim,
        }
    }

    /// Total payload size in bytes for an element type of `elem_size` bytes.
    #[inline]
    pub fn nbytes(&self, elem_size: usize) -> usize {
        self.len() * elem_size
    }

    /// Iterator over every coordinate in memory order.
    pub fn coords(&self) -> impl Iterator<Item = [usize; MAX_NDIM]> + '_ {
        let shape = *self;
        (0..shape.len()).map(move |lin| shape.unlinear(lin))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for i in 0..self.ndim {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{}", self.dims[i])?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_ndim_and_extents() {
        assert_eq!(Shape::d1(7).ndim(), 1);
        assert_eq!(Shape::d2(7, 3).ndim(), 2);
        let s = Shape::d3(100, 500, 500);
        assert_eq!(s.ndim(), 3);
        assert_eq!((s.nx(), s.ny(), s.nz(), s.nw()), (100, 500, 500, 1));
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
    }

    #[test]
    fn zero_extent_rejected() {
        assert_eq!(Shape::new(&[4, 0, 2]), Err(ShapeError::ZeroExtent));
    }

    #[test]
    fn too_many_dims_rejected() {
        assert_eq!(
            Shape::new(&[1, 2, 3, 4, 5]),
            Err(ShapeError::TooManyDims(5))
        );
        assert_eq!(Shape::new(&[]), Err(ShapeError::TooManyDims(0)));
    }

    #[test]
    fn linear_roundtrip_all_coords() {
        let s = Shape::d4(3, 4, 5, 2);
        for lin in 0..s.len() {
            let idx = s.unlinear(lin);
            assert_eq!(s.linear(idx), lin);
        }
    }

    #[test]
    fn x_is_fastest() {
        let s = Shape::d3(10, 4, 2);
        assert_eq!(s.linear([1, 0, 0, 0]), 1);
        assert_eq!(s.linear([0, 1, 0, 0]), 10);
        assert_eq!(s.linear([0, 0, 1, 0]), 40);
        assert_eq!(s.strides(), [1, 10, 40, 80]);
    }

    #[test]
    fn slab_is_contiguous_plane() {
        let s = Shape::d3(6, 7, 8);
        assert_eq!(s.slab_len(), 42);
        assert_eq!(s.linear([0, 0, 3, 0]), 3 * 42);
    }

    #[test]
    fn scaled_down_keeps_ndim_and_clamps() {
        let s = Shape::d3(100, 500, 500).scaled_down(8);
        assert_eq!(s.dims(), [12, 62, 62, 1]);
        assert_eq!(s.ndim(), 3);
        let tiny = Shape::d2(3, 5).scaled_down(10);
        assert_eq!(tiny.dims(), [1, 1, 1, 1]);
        assert_eq!(tiny.ndim(), 2);
    }

    #[test]
    fn coords_cover_everything_in_memory_order() {
        let s = Shape::d2(3, 2);
        let cs: Vec<_> = s.coords().collect();
        assert_eq!(
            cs,
            vec![
                [0, 0, 0, 0],
                [1, 0, 0, 0],
                [2, 0, 0, 0],
                [0, 1, 0, 0],
                [1, 1, 0, 0],
                [2, 1, 0, 0]
            ]
        );
    }

    #[test]
    fn display_shows_declared_dims_only() {
        assert_eq!(Shape::d3(1, 2, 3).to_string(), "(1×2×3)");
        assert_eq!(Shape::d1(9).to_string(), "(9)");
    }
}
