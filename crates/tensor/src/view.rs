//! Borrowed sub-region views: z-slabs and cubes.
//!
//! These mirror the two data decompositions the paper's GPU kernels use:
//! pattern 1 assigns one contiguous z-slab per thread block (Fig. 6), and
//! pattern 2 loads overlapping 3D cubes into shared memory (Fig. 7).

use crate::{Element, Shape, ShapeError, Tensor};

/// A borrowed `(x, y)` plane of a 3D/4D tensor — one contiguous slab.
#[derive(Clone, Copy, Debug)]
pub struct SlabView<'a, T> {
    data: &'a [T],
    nx: usize,
    ny: usize,
}

impl<'a, T: Element> SlabView<'a, T> {
    /// The slab at depth `z` (and hyper-index `w`) of `t`.
    pub fn of(t: &'a Tensor<T>, z: usize, w: usize) -> Result<Self, ShapeError> {
        let s = t.shape();
        if z >= s.nz() || w >= s.nw() {
            return Err(ShapeError::OutOfBounds);
        }
        let start = s.linear([0, 0, z, w]);
        let len = s.slab_len();
        Ok(SlabView {
            data: &t.as_slice()[start..start + len],
            nx: s.nx(),
            ny: s.ny(),
        })
    }

    /// Slab extent along x.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Slab extent along y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Element at `(x, y)` within the slab.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> T {
        debug_assert!(x < self.nx && y < self.ny);
        self.data[x + y * self.nx]
    }

    /// The slab's contiguous backing slice.
    #[inline]
    pub fn as_slice(&self) -> &'a [T] {
        self.data
    }
}

/// A borrowed axis-aligned box `[x0, x0+sx) × [y0, y0+sy) × [z0, z0+sz)` of a
/// tensor (w fixed). Non-contiguous in general.
#[derive(Clone, Copy)]
pub struct CubeView<'a, T> {
    t: &'a Tensor<T>,
    origin: [usize; 3],
    size: [usize; 3],
    w: usize,
}

impl<'a, T: Element> CubeView<'a, T> {
    /// The cube of extent `size` anchored at `origin` within `t` (hyper-index
    /// `w`). Fails if the box pokes outside the tensor.
    pub fn of(
        t: &'a Tensor<T>,
        origin: [usize; 3],
        size: [usize; 3],
        w: usize,
    ) -> Result<Self, ShapeError> {
        let s = t.shape();
        if size.contains(&0) {
            return Err(ShapeError::ZeroExtent);
        }
        let fits = origin[0] + size[0] <= s.nx()
            && origin[1] + size[1] <= s.ny()
            && origin[2] + size[2] <= s.nz()
            && w < s.nw();
        if !fits {
            return Err(ShapeError::OutOfBounds);
        }
        Ok(CubeView { t, origin, size, w })
    }

    /// Cube extents `[sx, sy, sz]`.
    #[inline]
    pub fn size(&self) -> [usize; 3] {
        self.size
    }

    /// Cube anchor in the parent tensor.
    #[inline]
    pub fn origin(&self) -> [usize; 3] {
        self.origin
    }

    /// Number of elements in the cube.
    #[inline]
    pub fn len(&self) -> usize {
        self.size.iter().product()
    }

    /// Always `false`; zero-sized cubes are rejected at construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Element at cube-local coordinates.
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> T {
        debug_assert!(x < self.size[0] && y < self.size[1] && z < self.size[2]);
        self.t.at([
            self.origin[0] + x,
            self.origin[1] + y,
            self.origin[2] + z,
            self.w,
        ])
    }

    /// Copy the cube into a contiguous buffer (simulating the global→shared
    /// memory staging of the paper's pattern-2 kernel).
    pub fn to_contiguous(&self) -> Vec<T> {
        let [sx, sy, sz] = self.size;
        let mut out = Vec::with_capacity(self.len());
        for z in 0..sz {
            for y in 0..sy {
                for x in 0..sx {
                    out.push(self.at(x, y, z));
                }
            }
        }
        out
    }

    /// Iterate over `(local_coord, value)` pairs in memory order.
    pub fn iter(&self) -> impl Iterator<Item = ([usize; 3], T)> + '_ {
        let [sx, sy, sz] = self.size;
        let me = *self;
        (0..sz).flat_map(move |z| {
            (0..sy).flat_map(move |y| (0..sx).map(move |x| ([x, y, z], me.at(x, y, z))))
        })
    }

    /// Shape of the cube as a standalone [`Shape`].
    pub fn shape(&self) -> Shape {
        Shape::d3(self.size[0], self.size[1], self.size[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn ramp() -> Tensor<f32> {
        Tensor::from_fn(Shape::d3(5, 4, 3), |[x, y, z, _]| {
            (x + 10 * y + 100 * z) as f32
        })
    }

    #[test]
    fn slab_view_is_the_right_plane() {
        let t = ramp();
        let s = SlabView::of(&t, 2, 0).unwrap();
        assert_eq!(s.at(0, 0), 200.0);
        assert_eq!(s.at(4, 3), 234.0);
        assert_eq!(s.as_slice().len(), 20);
    }

    #[test]
    fn slab_out_of_bounds() {
        let t = ramp();
        assert!(SlabView::of(&t, 3, 0).is_err());
        assert!(SlabView::of(&t, 0, 1).is_err());
    }

    #[test]
    fn cube_view_reads_correct_region() {
        let t = ramp();
        let c = CubeView::of(&t, [1, 1, 1], [2, 2, 2], 0).unwrap();
        assert_eq!(c.at(0, 0, 0), 111.0);
        assert_eq!(c.at(1, 1, 1), 222.0);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn cube_bounds_enforced() {
        let t = ramp();
        assert!(CubeView::of(&t, [4, 0, 0], [2, 1, 1], 0).is_err());
        assert!(CubeView::of(&t, [0, 0, 0], [0, 1, 1], 0).is_err());
        assert!(CubeView::of(&t, [0, 0, 0], [5, 4, 3], 0).is_ok());
    }

    #[test]
    fn to_contiguous_matches_iter_order() {
        let t = ramp();
        let c = CubeView::of(&t, [2, 1, 0], [3, 2, 2], 0).unwrap();
        let flat = c.to_contiguous();
        let via_iter: Vec<f32> = c.iter().map(|(_, v)| v).collect();
        assert_eq!(flat, via_iter);
        assert_eq!(flat.len(), 12);
        assert_eq!(flat[0], 12.0);
    }
}
