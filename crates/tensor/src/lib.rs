//! # zc-tensor
//!
//! Dense N-dimensional array substrate for the cuZ-Checker reproduction.
//!
//! Z-checker (and therefore cuZ-Checker) operates on 1D–4D scientific
//! floating-point fields stored contiguously in memory. This crate provides
//! exactly that: a small, allocation-conscious tensor type with the access
//! patterns the three computational patterns of the paper need:
//!
//! * flat element access for *global reduction* metrics (pattern 1),
//! * z-slab and halo-aware cube views for *stencil-like* metrics (pattern 2),
//! * overlapping sliding-window iteration for *SSIM* (pattern 3).
//!
//! ## Memory layout
//!
//! Dimensions are named `(x, y, z, w)` with **x fastest-varying**
//! (matching the paper's `(h, w, l)` notation where slices along the
//! z-axis are contiguous planes):
//!
//! ```text
//! linear(x, y, z, w) = x + nx * (y + ny * (z + nz * w))
//! ```
//!
//! A z-slab (an `(x, y)` plane) is therefore one contiguous chunk of
//! `nx * ny` elements — this is what pattern-1 assigns to a thread block.
//!
//! ## Example
//!
//! ```
//! use zc_tensor::{Shape, Tensor};
//!
//! let t = Tensor::from_fn(Shape::d3(4, 3, 2), |[x, y, z, _]| (x + 10 * y + 100 * z) as f32);
//! assert_eq!(t[[1, 2, 1, 0]], 121.0);
//! assert_eq!(t.shape().len(), 24);
//! let total: f32 = t.iter().sum();
//! assert!(total > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod element;
mod error;
mod shape;
mod tensor;
mod view;
mod windows;

pub use element::Element;
pub use error::ShapeError;
pub use shape::{Axis, Shape, MAX_NDIM};
pub use tensor::Tensor;
pub use view::{CubeView, SlabView};
pub use windows::{CubeBlocks, WindowSpec, Windows};
