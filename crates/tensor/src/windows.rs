//! Sliding-window and cube-block iteration.
//!
//! [`Windows`] enumerates the overlapping SSIM scan positions of pattern 3
//! (Fig. 5 of the paper): a `wsize`-sided window stepped by `step` along
//! every declared axis. [`CubeBlocks`] enumerates the overlapping
//! shared-memory cubes of pattern 2 (Fig. 7): blocks of side `ssize` whose
//! interiors tile the stencil-valid region, adjacent blocks overlapping by
//! `stride` (the halo).

use crate::{CubeView, Element, Shape, ShapeError, Tensor};

/// Parameters of a sliding-window scan (SSIM).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window side length along each scanned axis (paper default: 8).
    pub size: usize,
    /// Sliding step length (paper default: 1).
    pub step: usize,
}

impl WindowSpec {
    /// A window spec; panics on zero size or step.
    pub fn new(size: usize, step: usize) -> Self {
        assert!(
            size > 0 && step > 0,
            "window size and step must be positive"
        );
        WindowSpec { size, step }
    }

    /// Number of scan positions along an axis of extent `n`
    /// (`0` when the window does not fit).
    #[inline]
    pub fn positions(&self, n: usize) -> usize {
        if n < self.size {
            0
        } else {
            (n - self.size) / self.step + 1
        }
    }
}

impl Default for WindowSpec {
    /// The paper's evaluation settings: window side 8, step 1.
    fn default() -> Self {
        WindowSpec { size: 8, step: 1 }
    }
}

/// Iterator over all sliding-window origins of a shape.
///
/// Windows scan every *declared* axis; for a 3D tensor the window is a cube,
/// for 2D a square, for 1D an interval. Yields the origin `[x, y, z]`
/// (w fixed at 0 — 4D fields are scanned per 3D sub-volume by callers).
#[derive(Clone, Debug)]
pub struct Windows {
    spec: WindowSpec,
    counts: [usize; 3],
    next: Option<[usize; 3]>,
}

impl Windows {
    /// Windows of `spec` over `shape`. Axes beyond `shape.ndim()` are not
    /// scanned (their count is 1 at origin 0).
    pub fn over(shape: Shape, spec: WindowSpec) -> Self {
        let scan = |axis: usize, n: usize| -> usize {
            if axis < shape.ndim() {
                spec.positions(n)
            } else {
                1
            }
        };
        let counts = [
            scan(0, shape.nx()),
            scan(1, shape.ny()),
            scan(2, shape.nz()),
        ];
        let next = if counts.contains(&0) {
            None
        } else {
            Some([0, 0, 0])
        };
        Windows { spec, counts, next }
    }

    /// Total number of scan positions.
    pub fn count_total(&self) -> usize {
        self.counts.iter().product()
    }
}

impl Iterator for Windows {
    type Item = [usize; 3];

    fn next(&mut self) -> Option<Self::Item> {
        let pos = self.next?;
        let item = [
            pos[0] * self.spec.step,
            pos[1] * self.spec.step,
            pos[2] * self.spec.step,
        ];
        // Advance odometer x → y → z.
        let mut p = pos;
        p[0] += 1;
        if p[0] == self.counts[0] {
            p[0] = 0;
            p[1] += 1;
            if p[1] == self.counts[1] {
                p[1] = 0;
                p[2] += 1;
            }
        }
        self.next = if p[2] == self.counts[2] {
            None
        } else {
            Some(p)
        };
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Conservative: exact count requires odometer math; upper bound is fine.
        (0, Some(self.count_total()))
    }
}

/// Iterator over the overlapping pattern-2 cube blocks of a 3D tensor.
///
/// Each yielded [`CubeView`] has side ≤ `ssize`; consecutive blocks along an
/// axis overlap by `stride` so that every interior point (those at least
/// `stride/2` from a face, for centred stencils) appears in the interior of
/// exactly one block — mirroring Algorithm 2's `ssize' = ssize - stride`
/// advance.
pub struct CubeBlocks<'a, T> {
    t: &'a Tensor<T>,
    ssize: usize,
    w: usize,
    origins: Vec<[usize; 3]>,
    pos: usize,
}

impl<'a, T: Element> CubeBlocks<'a, T> {
    /// Blocks of side `ssize` with halo `stride` over `t` (hyper-index `w`).
    ///
    /// Fails when `stride >= ssize` (no interior would remain) or when the
    /// tensor is smaller than one stencil neighbourhood.
    pub fn over(
        t: &'a Tensor<T>,
        ssize: usize,
        stride: usize,
        w: usize,
    ) -> Result<Self, ShapeError> {
        if ssize == 0 || stride >= ssize {
            return Err(ShapeError::OutOfBounds);
        }
        let s = t.shape();
        let interior = ssize - stride;
        let starts = |n: usize| -> Vec<usize> {
            if n == 0 {
                return vec![];
            }
            let mut v = Vec::new();
            let mut i = 0usize;
            loop {
                v.push(i.min(n.saturating_sub(1)));
                if i + ssize >= n + stride {
                    break;
                }
                i += interior;
            }
            v
        };
        let xs = starts(s.nx());
        let ys = starts(s.ny());
        let zs = starts(s.nz());
        let mut origins = Vec::with_capacity(xs.len() * ys.len() * zs.len());
        for &z in &zs {
            for &y in &ys {
                for &x in &xs {
                    origins.push([x, y, z]);
                }
            }
        }
        Ok(CubeBlocks {
            t,
            ssize,
            w,
            origins,
            pos: 0,
        })
    }

    /// Total number of blocks.
    pub fn count_total(&self) -> usize {
        self.origins.len()
    }
}

impl<'a, T: Element> Iterator for CubeBlocks<'a, T> {
    type Item = CubeView<'a, T>;

    fn next(&mut self) -> Option<Self::Item> {
        let s = self.t.shape();
        let origin = *self.origins.get(self.pos)?;
        self.pos += 1;
        let size = [
            self.ssize.min(s.nx() - origin[0]),
            self.ssize.min(s.ny() - origin[1]),
            self.ssize.min(s.nz() - origin[2]),
        ];
        Some(CubeView::of(self.t, origin, size, self.w).expect("origins are in-bounds"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn window_positions_arithmetic() {
        let spec = WindowSpec::new(8, 1);
        assert_eq!(spec.positions(8), 1);
        assert_eq!(spec.positions(10), 3);
        assert_eq!(spec.positions(7), 0);
        let strided = WindowSpec::new(8, 4);
        assert_eq!(strided.positions(16), 3); // origins 0, 4, 8
    }

    #[test]
    fn windows_enumerate_all_origins() {
        let shape = Shape::d3(10, 9, 8);
        let w: Vec<_> = Windows::over(shape, WindowSpec::new(8, 1)).collect();
        assert_eq!(w.len(), (3 * 2));
        assert_eq!(w[0], [0, 0, 0]);
        assert_eq!(*w.last().unwrap(), [2, 1, 0]);
    }

    #[test]
    fn windows_respect_step() {
        let shape = Shape::d2(12, 12);
        let w: Vec<_> = Windows::over(shape, WindowSpec::new(4, 4)).collect();
        // 3 positions per axis, z not scanned for 2D.
        assert_eq!(w.len(), 9);
        assert!(w.contains(&[8, 8, 0]));
        assert!(w.iter().all(|o| o[2] == 0));
    }

    #[test]
    fn window_too_big_yields_nothing() {
        let shape = Shape::d3(4, 4, 4);
        let mut w = Windows::over(shape, WindowSpec::new(8, 1));
        assert_eq!(w.next(), None);
        assert_eq!(w.count_total(), 0);
    }

    #[test]
    fn cube_blocks_cover_interior_once() {
        // Every point at distance >= stride/2... simpler check: union of
        // block interiors (excluding the `stride`-wide trailing border of
        // each block) covers the stencil-valid region exactly once.
        let t = Tensor::from_fn(Shape::d3(20, 20, 20), |[x, ..]| x as f32);
        let stride = 2usize;
        let ssize = 8usize;
        let mut seen = vec![0u32; t.len()];
        for cube in CubeBlocks::over(&t, ssize, stride, 0).unwrap() {
            let [sx, sy, sz] = cube.size();
            let o = cube.origin();
            // Interior points of this block: locals in [0, s-stride) per axis,
            // clamped to blocks that actually have that many points.
            for z in 0..sz.saturating_sub(stride) {
                for y in 0..sy.saturating_sub(stride) {
                    for x in 0..sx.saturating_sub(stride) {
                        let idx = t.shape().linear([o[0] + x, o[1] + y, o[2] + z, 0]);
                        seen[idx] += 1;
                    }
                }
            }
        }
        // Points with coordinate < n - stride on every axis must be covered
        // exactly once.
        let s = t.shape();
        for z in 0..s.nz() - stride {
            for y in 0..s.ny() - stride {
                for x in 0..s.nx() - stride {
                    let c = seen[s.linear([x, y, z, 0])];
                    assert_eq!(c, 1, "point ({x},{y},{z}) covered {c} times");
                }
            }
        }
    }

    #[test]
    fn cube_blocks_reject_bad_params() {
        let t = Tensor::<f32>::zeros(Shape::d3(8, 8, 8));
        assert!(CubeBlocks::over(&t, 4, 4, 0).is_err());
        assert!(CubeBlocks::over(&t, 0, 0, 0).is_err());
        assert!(CubeBlocks::over(&t, 4, 1, 0).is_ok());
    }
}
