//! Error types for shape and view construction.

use std::fmt;

/// Errors raised when constructing shapes, tensors or views.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// An extent of zero was supplied.
    ZeroExtent,
    /// More than [`crate::MAX_NDIM`] (or zero) extents were supplied.
    TooManyDims(usize),
    /// Backing buffer length does not match the shape's element count.
    LenMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually supplied.
        got: usize,
    },
    /// Two tensors that must be congruent have different shapes.
    ShapeMismatch,
    /// A requested sub-region does not fit inside the tensor.
    OutOfBounds,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroExtent => write!(f, "shape extents must be non-zero"),
            ShapeError::TooManyDims(n) => {
                write!(f, "expected 1..={} dimensions, got {n}", crate::MAX_NDIM)
            }
            ShapeError::LenMismatch { expected, got } => {
                write!(
                    f,
                    "buffer length {got} does not match shape element count {expected}"
                )
            }
            ShapeError::ShapeMismatch => write!(f, "tensor shapes do not match"),
            ShapeError::OutOfBounds => write!(f, "requested region exceeds tensor bounds"),
        }
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(ShapeError::ZeroExtent.to_string().contains("non-zero"));
        assert!(ShapeError::TooManyDims(9).to_string().contains('9'));
        let e = ShapeError::LenMismatch {
            expected: 10,
            got: 3,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('3'));
    }
}
