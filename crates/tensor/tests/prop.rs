//! Property-based tests for the tensor substrate, driven by a deterministic
//! inline RNG (no external property-testing dependency; the build is
//! offline-only). Every test sweeps a fixed number of random cases from a
//! fixed seed, so failures reproduce exactly.

use zc_tensor::{CubeBlocks, Shape, Tensor, WindowSpec, Windows};

/// Deterministic splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next() >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// A random 1–4D shape (same distribution shape as the old strategies).
    fn shape(&mut self) -> Shape {
        match self.next() % 4 {
            0 => Shape::d1(self.usize(1, 500)),
            1 => Shape::d2(self.usize(1, 40), self.usize(1, 40)),
            2 => Shape::d3(self.usize(1, 20), self.usize(1, 20), self.usize(1, 20)),
            _ => Shape::d4(
                self.usize(1, 10),
                self.usize(1, 10),
                self.usize(1, 10),
                self.usize(1, 6),
            ),
        }
    }
}

#[test]
fn linear_unlinear_roundtrip() {
    let mut rng = Rng(0x7e4507);
    for case in 0..256 {
        let shape = rng.shape();
        let frac = rng.f64(0.0, 1.0);
        let lin = ((shape.len() - 1) as f64 * frac) as usize;
        let idx = shape.unlinear(lin);
        assert_eq!(shape.linear(idx), lin, "case {case}");
        assert!(shape.contains(idx), "case {case}");
    }
}

#[test]
fn coords_visit_each_linear_offset_once() {
    let mut rng = Rng(0xc002d5);
    let mut done = 0;
    while done < 64 {
        let shape = rng.shape();
        if shape.len() > 4096 {
            continue;
        }
        done += 1;
        let mut seen = vec![false; shape.len()];
        for c in shape.coords() {
            let lin = shape.linear(c);
            assert!(!seen[lin], "offset {lin} visited twice");
            seen[lin] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn from_fn_agrees_with_at() {
    let mut rng = Rng(0xf40f);
    let mut done = 0;
    while done < 64 {
        let shape = rng.shape();
        if shape.len() > 4096 {
            continue;
        }
        done += 1;
        let t = Tensor::from_fn(shape, |[x, y, z, w]| (x + 7 * y + 31 * z + 101 * w) as f32);
        for c in shape.coords() {
            assert_eq!(t.at(c), (c[0] + 7 * c[1] + 31 * c[2] + 101 * c[3]) as f32);
        }
    }
}

#[test]
fn windows_count_matches_closed_form() {
    let mut rng = Rng(0x31d0);
    for case in 0..256 {
        let (nx, ny, nz) = (rng.usize(1, 40), rng.usize(1, 40), rng.usize(1, 40));
        let size = rng.usize(1, 10);
        let step = rng.usize(1, 5);
        let shape = Shape::d3(nx, ny, nz);
        let spec = WindowSpec::new(size, step);
        let count = Windows::over(shape, spec).count();
        let pos = |n: usize| if n < size { 0 } else { (n - size) / step + 1 };
        assert_eq!(count, pos(nx) * pos(ny) * pos(nz), "case {case}");
    }
}

#[test]
fn windows_fit_inside_the_shape() {
    let mut rng = Rng(0xf17);
    for _ in 0..64 {
        let (nx, ny, nz) = (rng.usize(4, 30), rng.usize(4, 30), rng.usize(4, 30));
        let size = rng.usize(2, 8);
        let step = rng.usize(1, 4);
        let shape = Shape::d3(nx, ny, nz);
        for [ox, oy, oz] in Windows::over(shape, WindowSpec::new(size, step)) {
            assert!(ox + size <= nx && oy + size <= ny && oz + size <= nz);
            assert!(ox % step == 0 && oy % step == 0 && oz % step == 0);
        }
    }
}

#[test]
fn cube_blocks_interiors_tile_exactly_once() {
    let mut rng = Rng(0xcafe);
    let mut done = 0;
    while done < 32 {
        let n = rng.usize(8, 24);
        let ssize = rng.usize(4, 10);
        let stride = rng.usize(1, 4);
        if stride >= ssize {
            continue;
        }
        done += 1;
        let shape = Shape::d3(n, n, n);
        let t = Tensor::<f32>::zeros(shape);
        let mut covered = vec![0u8; shape.len()];
        for cube in CubeBlocks::over(&t, ssize, stride, 0).unwrap() {
            let [sx, sy, sz] = cube.size();
            let o = cube.origin();
            for z in 0..sz.saturating_sub(stride) {
                for y in 0..sy.saturating_sub(stride) {
                    for x in 0..sx.saturating_sub(stride) {
                        covered[shape.linear([o[0] + x, o[1] + y, o[2] + z, 0])] += 1;
                    }
                }
            }
        }
        for z in 0..n - stride {
            for y in 0..n - stride {
                for x in 0..n - stride {
                    assert_eq!(covered[shape.linear([x, y, z, 0])], 1, "({x},{y},{z})");
                }
            }
        }
    }
}

#[test]
fn zip_map_is_elementwise() {
    let mut rng = Rng(0x217);
    let mut done = 0;
    while done < 64 {
        let shape = rng.shape();
        if shape.len() > 4096 {
            continue;
        }
        done += 1;
        let a = Tensor::from_fn(shape, |[x, ..]| x as f32);
        let b = Tensor::from_fn(shape, |[_, y, ..]| y as f32 * 2.0);
        let c = a.zip_map(&b, |u, v| u + v).unwrap();
        for coord in shape.coords() {
            assert_eq!(c.at(coord), coord[0] as f32 + coord[1] as f32 * 2.0);
        }
    }
}
