//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use zc_tensor::{CubeBlocks, Shape, Tensor, WindowSpec, Windows};

fn shapes() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (1usize..500).prop_map(Shape::d1),
        ((1usize..40), (1usize..40)).prop_map(|(x, y)| Shape::d2(x, y)),
        ((1usize..20), (1usize..20), (1usize..20)).prop_map(|(x, y, z)| Shape::d3(x, y, z)),
        ((1usize..10), (1usize..10), (1usize..10), (1usize..6))
            .prop_map(|(x, y, z, w)| Shape::d4(x, y, z, w)),
    ]
}

proptest! {
    #[test]
    fn linear_unlinear_roundtrip(shape in shapes(), frac in 0.0f64..1.0) {
        let lin = ((shape.len() - 1) as f64 * frac) as usize;
        let idx = shape.unlinear(lin);
        prop_assert_eq!(shape.linear(idx), lin);
        prop_assert!(shape.contains(idx));
    }

    #[test]
    fn coords_visit_each_linear_offset_once(shape in shapes()) {
        prop_assume!(shape.len() <= 4096);
        let mut seen = vec![false; shape.len()];
        for c in shape.coords() {
            let lin = shape.linear(c);
            prop_assert!(!seen[lin], "offset {lin} visited twice");
            seen[lin] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn from_fn_agrees_with_at(shape in shapes()) {
        prop_assume!(shape.len() <= 4096);
        let t = Tensor::from_fn(shape, |[x, y, z, w]| {
            (x + 7 * y + 31 * z + 101 * w) as f32
        });
        for c in shape.coords() {
            prop_assert_eq!(t.at(c), (c[0] + 7 * c[1] + 31 * c[2] + 101 * c[3]) as f32);
        }
    }

    #[test]
    fn windows_count_matches_closed_form(
        (nx, ny, nz) in ((1usize..40), (1usize..40), (1usize..40)),
        size in 1usize..10,
        step in 1usize..5,
    ) {
        let shape = Shape::d3(nx, ny, nz);
        let spec = WindowSpec::new(size, step);
        let count = Windows::over(shape, spec).count();
        let pos = |n: usize| if n < size { 0 } else { (n - size) / step + 1 };
        prop_assert_eq!(count, pos(nx) * pos(ny) * pos(nz));
    }

    #[test]
    fn windows_fit_inside_the_shape(
        (nx, ny, nz) in ((4usize..30), (4usize..30), (4usize..30)),
        size in 2usize..8,
        step in 1usize..4,
    ) {
        let shape = Shape::d3(nx, ny, nz);
        for [ox, oy, oz] in Windows::over(shape, WindowSpec::new(size, step)) {
            prop_assert!(ox + size <= nx && oy + size <= ny && oz + size <= nz);
            prop_assert!(ox % step == 0 && oy % step == 0 && oz % step == 0);
        }
    }

    #[test]
    fn cube_blocks_interiors_tile_exactly_once(
        (n, ssize, stride) in (8usize..24, 4usize..10, 1usize..4)
    ) {
        prop_assume!(stride < ssize);
        let shape = Shape::d3(n, n, n);
        let t = Tensor::<f32>::zeros(shape);
        let mut covered = vec![0u8; shape.len()];
        for cube in CubeBlocks::over(&t, ssize, stride, 0).unwrap() {
            let [sx, sy, sz] = cube.size();
            let o = cube.origin();
            for z in 0..sz.saturating_sub(stride) {
                for y in 0..sy.saturating_sub(stride) {
                    for x in 0..sx.saturating_sub(stride) {
                        covered[shape.linear([o[0] + x, o[1] + y, o[2] + z, 0])] += 1;
                    }
                }
            }
        }
        for z in 0..n - stride {
            for y in 0..n - stride {
                for x in 0..n - stride {
                    prop_assert_eq!(covered[shape.linear([x, y, z, 0])], 1,
                        "({},{},{})", x, y, z);
                }
            }
        }
    }

    #[test]
    fn zip_map_is_elementwise(shape in shapes()) {
        prop_assume!(shape.len() <= 4096);
        let a = Tensor::from_fn(shape, |[x, ..]| x as f32);
        let b = Tensor::from_fn(shape, |[_, y, ..]| y as f32 * 2.0);
        let c = a.zip_map(&b, |u, v| u + v).unwrap();
        for coord in shape.coords() {
            prop_assert_eq!(c.at(coord), coord[0] as f32 + coord[1] as f32 * 2.0);
        }
    }
}
