//! In-tree stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in fully offline environments, so the real
//! registry crate cannot be resolved. This shim implements the subset of
//! criterion's API that the `zc-bench` bench targets use — groups,
//! throughput annotation, `bench_function` / `bench_with_input`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! wall-clock timer: one warm-up call calibrates an iteration count
//! targeting ~300 ms per benchmark, a single timed batch produces the
//! reported mean. No statistical analysis, no HTML reports; the point is
//! that `cargo bench` runs and prints comparable ns/iter + throughput
//! lines without network access. Swap in the real criterion by replacing
//! the `path` dependency with a registry version where one is available.

#![forbid(unsafe_code)]
use std::time::{Duration, Instant};

/// Re-exported hint barrier (criterion exposes its own `black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter display value.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Top-level harness handle (criterion's `Criterion<M>`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate per-iteration throughput for the following benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time a closure-driven benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&self.name, &id.into(), b.ns_per_iter, self.throughput);
        self
    }

    /// Time a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&self.name, &id.id, b.ns_per_iter, self.throughput);
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up call doubles as the calibration sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let target = Duration::from_millis(300).as_secs_f64();
        let iters = (target / once).clamp(1.0, 1e7) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.ns_per_iter = t1.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }
}

fn report(group: &str, id: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!(
                "  {:.3} GiB/s",
                b as f64 / (ns * 1e-9) / (1u64 << 30) as f64
            )
        }
        Some(Throughput::Elements(e)) => {
            format!("  {:.3} Melem/s", e as f64 / (ns * 1e-9) / 1e6)
        }
        None => String::new(),
    };
    println!("{group}/{id}: {time}/iter{rate}");
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0..100u64).map(|i| i * k).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn shim_api_compiles_and_runs() {
        criterion_group!(benches, sample_bench);
        benches();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("fbm", "64cubed").id, "fbm/64cubed");
    }
}
