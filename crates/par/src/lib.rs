//! # zc-par
//!
//! Minimal fork/join data parallelism on `std::thread::scope` — the
//! workspace's stand-in for an external thread-pool crate, so the build
//! has zero registry dependencies and works in fully offline environments.
//!
//! Unlike work-stealing pools, the partitioning here is *static and
//! contiguous*: index range `0..n` is split into one contiguous span per
//! worker and results are concatenated in index order. That makes every
//! caller deterministic by construction (same inputs → same output order →
//! same floating-point reduction order), which the simulator's
//! "deterministic despite parallelism" tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads used by [`par_map`] / [`par_chunks_mut`]
/// (the machine's available parallelism, cached; at least 1).
///
/// The `ZC_PAR_THREADS` environment variable overrides the detected count
/// per call (any integer ≥ 1; other values are ignored). Partitioning is
/// static, so results are identical at every worker count — the override
/// exists so determinism tests can actually *run* the same workload at 1,
/// 2, and max workers and assert bit-equality, and so operators can pin
/// the host-side thread footprint of a campaign.
pub fn max_threads() -> usize {
    if let Some(n) = std::env::var("ZC_PAR_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Map `f` over `0..n` in parallel, returning results in index order.
///
/// `f` runs on scoped worker threads over contiguous index spans; the
/// output is exactly `(0..n).map(f).collect()` regardless of thread count.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = max_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let span = n.div_ceil(threads);
    let f = &f;
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * span;
                let hi = ((t + 1) * span).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("zc-par worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Apply `f(chunk_index, chunk)` to consecutive `chunk`-sized mutable
/// chunks of `data` in parallel (the last chunk may be shorter).
///
/// Chunk indices match `data.chunks_mut(chunk).enumerate()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n_chunks = data.len().div_ceil(chunk);
    let threads = max_threads().min(n_chunks);
    if threads <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let per_worker = n_chunks.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let mut rest = data;
        let mut next_chunk = 0usize;
        while !rest.is_empty() {
            let take = (per_worker * chunk).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let first = next_chunk;
            next_chunk += head.len().div_ceil(chunk);
            s.spawn(move || {
                for (j, c) in head.chunks_mut(chunk).enumerate() {
                    f(first + j, c);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn env_override_controls_worker_count() {
        // Other tests in this binary may run concurrently and observe the
        // override while it is set — harmless, because results are
        // worker-count-independent by construction.
        std::env::set_var("ZC_PAR_THREADS", "3");
        assert_eq!(max_threads(), 3);
        let v = par_map(100, |i| i * 2);
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        // Unparsable or zero values fall back to detection.
        std::env::set_var("ZC_PAR_THREADS", "zero");
        assert!(max_threads() >= 1);
        std::env::set_var("ZC_PAR_THREADS", "0");
        assert!(max_threads() >= 1);
        std::env::remove_var("ZC_PAR_THREADS");
        assert!(max_threads() >= 1);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let v = par_map(1000, |i| i * 3);
        assert_eq!(v, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_fp_reduction_is_deterministic() {
        let f = |i: usize| ((i as f64) * 0.1).sin();
        let a: f64 = par_map(10_000, f).iter().sum();
        let b: f64 = par_map(10_000, f).iter().sum();
        let serial: f64 = (0..10_000).map(f).sum();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), serial.to_bits());
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 1013]; // deliberately not a chunk multiple
        let calls = AtomicUsize::new(0);
        par_chunks_mut(&mut data, 64, |i, c| {
            calls.fetch_add(1, Ordering::Relaxed);
            for v in c.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1013usize.div_ceil(64));
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 64) as u32 + 1, "element {i}");
        }
    }

    #[test]
    fn par_chunks_mut_chunk_larger_than_data() {
        let mut data = vec![1u8; 5];
        par_chunks_mut(&mut data, 100, |i, c| {
            assert_eq!(i, 0);
            assert_eq!(c.len(), 5);
            c.fill(9);
        });
        assert_eq!(data, vec![9u8; 5]);
    }
}
