//! `cuzc` — the cuZ-Checker command-line tool.
//!
//! Assess a raw binary scientific field against its decompressed version
//! (or compress it on the fly with the configured codec):
//!
//! ```text
//! cuzc --input data.f32 --shape 100x500x500 --decompressed data.dec.f32
//! cuzc --input data.f32 --shape 512x512x512 --config run.cfg
//! cuzc --demo                        # self-contained demo on synthetic data
//! cuzc --demo --fleet 8 --scheduler list --progressive
//!                                    # demo campaign on a simulated fleet
//! cuzc --demo --fleet 8 --chaos 42:0.05
//!                                    # same fleet under seeded device faults
//! cuzc --serve-demo --fleet 4 --requests 42:64
//!                                    # resident service on a seeded trace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use zc_compress::{
    BitGroomCompressor, Compressor, LosslessCompressor, SzCompressor, ZfpLikeCompressor,
};
use zc_core::campaign::{CampaignSpec, FieldRef, FleetSpec, RecoveryPolicy, Scheduler};
use zc_core::config::{parse, CompressorChoice, RunConfig, TilingPolicy};
use zc_core::exec::make_executor_with_device_mem;
use zc_core::io::{read_raw, write_pgm_slice, Endianness};
use zc_core::metrics::{Metric, MetricSelection};
use zc_core::output::{autocorr_csv, histogram_csv, scalars_csv};
use zc_core::plan::AssessPlan;
use zc_core::recommend::{ProgressivePolicy, QualityCriteria};
use zc_tensor::{Shape, Tensor};

struct Args {
    input: Option<PathBuf>,
    decompressed: Option<PathBuf>,
    shape: Option<Shape>,
    config: Option<PathBuf>,
    metrics: Option<String>,
    big_endian: bool,
    csv_dir: Option<PathBuf>,
    pgm: Option<PathBuf>,
    html: Option<PathBuf>,
    trace: bool,
    sanitize: bool,
    verify: bool,
    explain_plan: bool,
    device_mem: Option<u64>,
    slabs: Option<TilingPolicy>,
    demo: bool,
    fleet: Option<u32>,
    scheduler: Option<Scheduler>,
    progressive: bool,
    chaos: Option<(u64, u32)>,
    serve_demo: bool,
    requests: Option<(u64, usize)>,
}

const USAGE: &str = "usage: cuzc [options]
  --input <file>          raw binary f32 field (original)
  --shape NXxNYxNZ[xNW]   field dimensions (x fastest-varying)
  --decompressed <file>   raw binary f32 field to assess against
  --config <file>         run configuration (Z-checker ini dialect)
  --metrics <key,key,...> assess only these metrics (overrides the config
                          selection; keys as in the report, e.g. psnr,ssim)
  --big-endian            input files are big-endian
  --csv-dir <dir>         also write scalars/pdf/autocorr CSVs there
  --pgm <file>            also write a mid-depth PGM slice of the input
  --html <file>           also write an HTML dashboard report
  --trace                 print profiler-style per-pattern launch summaries
  --sanitize              run simulated kernels under the zc-sancheck
                          sanitizer (also: ZC_SANITIZE=1); exit 3 on hazards
  --verify                statically verify the lowered plan (DAG shape,
                          launch footprints, capacity, estimator honesty)
                          and lint the kernel sources, then exit without
                          assessing; exit 4 on error-severity diagnostics
  --explain-plan          print the pass DAG, per-pass footprint/traffic
                          table and resolved slab window, then exit
  --device-mem <size>     simulated device memory (bytes, or KiB/MiB/GiB
                          suffix); larger field pairs stream out-of-core
  --slabs <n|auto|mono>   slab-tiling policy (overrides the config)
  --demo                  run on built-in synthetic data (no files needed)
  --fleet <gpus>          with --demo: run a mixed-size demo campaign on a
                          simulated fleet of this many GPUs
  --scheduler <policy>    campaign job placement: round-robin (default) or
                          list (cost-model LPT with oversized-job splitting)
  --progressive           campaign prepass: early-exit jobs whose strided
                          subsample is decidable far from the thresholds
  --chaos <seed>:<rate>   with --demo --fleet: inject seeded transient
                          device faults at <rate> (a fraction, e.g. 0.05)
                          and recover with retry/backoff rescheduling;
                          exit 5 if any job is lost or the fleet dies
  --serve-demo            run the resident assessment service (engine
                          session + content-addressed cache + quotas +
                          backpressure) on a seeded synthetic trace and
                          print the serve report; --fleet sizes the
                          simulated fleet (default 4); exit 6 if the
                          saturated service completed no requests
  --requests <seed>:<count> with --serve-demo: trace seed and length
                          (default 42:32)";

fn parse_shape(s: &str) -> Result<Shape, String> {
    let dims: Result<Vec<usize>, _> = s.split('x').map(|p| p.parse::<usize>()).collect();
    let dims = dims.map_err(|_| format!("bad shape '{s}'"))?;
    Shape::new(&dims).map_err(|e| format!("bad shape '{s}': {e}"))
}

/// Parse a byte size: a plain integer, or one with a KiB/MiB/GiB suffix.
fn parse_size(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (num, mult) = if let Some(p) = t.strip_suffix("GiB") {
        (p, 1u64 << 30)
    } else if let Some(p) = t.strip_suffix("MiB") {
        (p, 1 << 20)
    } else if let Some(p) = t.strip_suffix("KiB") {
        (p, 1 << 10)
    } else {
        (t, 1)
    };
    num.trim()
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| format!("bad size '{s}' (bytes, or KiB/MiB/GiB suffix)"))
}

/// Parse a `--chaos` spec: `<seed>:<rate>` where the rate is a fault
/// probability per attempt as a fraction in `[0, 1]` (`0.05` = 5%).
fn parse_chaos(s: &str) -> Result<(u64, u32), String> {
    let bad = || format!("bad chaos spec '{s}' (expected <seed>:<rate>, e.g. 42:0.05)");
    let (seed, rate) = s.split_once(':').ok_or_else(bad)?;
    let seed = seed.trim().parse::<u64>().map_err(|_| bad())?;
    let rate = rate.trim().parse::<f64>().map_err(|_| bad())?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!(
            "chaos rate {rate} out of range (fraction in [0, 1])"
        ));
    }
    Ok((seed, (rate * 1000.0).round() as u32))
}

/// Parse a `--requests` spec: `<seed>:<count>` for the serve-demo trace.
fn parse_requests(s: &str) -> Result<(u64, usize), String> {
    let bad = || format!("bad requests spec '{s}' (expected <seed>:<count>, e.g. 42:64)");
    let (seed, count) = s.split_once(':').ok_or_else(bad)?;
    let seed = seed.trim().parse::<u64>().map_err(|_| bad())?;
    let count = count
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&c| c > 0)
        .ok_or_else(bad)?;
    Ok((seed, count))
}

/// Parse a `--slabs` policy: `auto`, `mono[lithic]`, or a slab count.
fn parse_slabs(s: &str) -> Result<TilingPolicy, String> {
    match s {
        "auto" => Ok(TilingPolicy::Auto),
        "mono" | "monolithic" => Ok(TilingPolicy::Monolithic),
        n => match n.parse::<usize>() {
            Ok(v) if v > 0 => Ok(TilingPolicy::Slabs(v)),
            _ => Err(format!("bad slab policy '{s}' (n, auto, or mono)")),
        },
    }
}

/// Parse a `--metrics` list of comma-separated [`Metric::key`] names into a
/// selection. An unknown key lists every valid key in the error.
fn parse_metrics(spec: &str) -> Result<MetricSelection, String> {
    let mut sel = MetricSelection::none();
    for key in spec.split(',').map(str::trim).filter(|k| !k.is_empty()) {
        match Metric::from_key(key) {
            Some(m) => sel = sel.with(m),
            None => {
                let known: Vec<&str> = Metric::ALL.iter().map(|m| m.key()).collect();
                return Err(format!(
                    "unknown metric '{key}' (known: {})",
                    known.join(", ")
                ));
            }
        }
    }
    if sel.is_empty() {
        return Err("--metrics needs at least one metric key".to_string());
    }
    Ok(sel)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        decompressed: None,
        shape: None,
        config: None,
        metrics: None,
        big_endian: false,
        csv_dir: None,
        pgm: None,
        html: None,
        trace: false,
        sanitize: false,
        verify: false,
        explain_plan: false,
        device_mem: None,
        slabs: None,
        demo: false,
        fleet: None,
        scheduler: None,
        progressive: false,
        chaos: None,
        serve_demo: false,
        requests: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--input" => args.input = Some(PathBuf::from(val()?)),
            "--decompressed" => args.decompressed = Some(PathBuf::from(val()?)),
            "--shape" => args.shape = Some(parse_shape(&val()?)?),
            "--config" => args.config = Some(PathBuf::from(val()?)),
            "--metrics" => args.metrics = Some(val()?),
            "--big-endian" => args.big_endian = true,
            "--csv-dir" => args.csv_dir = Some(PathBuf::from(val()?)),
            "--pgm" => args.pgm = Some(PathBuf::from(val()?)),
            "--html" => args.html = Some(PathBuf::from(val()?)),
            "--trace" => args.trace = true,
            "--sanitize" => args.sanitize = true,
            "--verify" => args.verify = true,
            "--explain-plan" => args.explain_plan = true,
            "--device-mem" => args.device_mem = Some(parse_size(&val()?)?),
            "--slabs" => args.slabs = Some(parse_slabs(&val()?)?),
            "--demo" => args.demo = true,
            "--fleet" => {
                let v = val()?;
                args.fleet = Some(
                    v.parse::<u32>()
                        .ok()
                        .filter(|&g| g > 0)
                        .ok_or_else(|| format!("bad fleet size '{v}' (positive GPU count)"))?,
                );
            }
            "--scheduler" => args.scheduler = Some(Scheduler::parse(&val()?)?),
            "--progressive" => args.progressive = true,
            "--chaos" => args.chaos = Some(parse_chaos(&val()?)?),
            "--serve-demo" => args.serve_demo = true,
            "--requests" => args.requests = Some(parse_requests(&val()?)?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn load_config(args: &Args) -> Result<RunConfig, String> {
    match &args.config {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            parse(&text).map_err(|e| format!("{}: {e}", path.display()))
        }
        None => Ok(RunConfig {
            assess: zc_core::AssessConfig::default(),
            executor: zc_core::ExecutorKind::CuZc,
            compressor: Some(CompressorChoice::Sz(zc_compress::ErrorBound::Rel(1e-3))),
        }),
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let mut run = load_config(&args)?;
    if let Some(spec) = &args.metrics {
        run.assess.metrics = parse_metrics(spec)?;
    }
    if let Some(policy) = args.slabs {
        run.assess.tiling = policy;
    }
    let endian = if args.big_endian {
        Endianness::Big
    } else {
        Endianness::Little
    };
    if args.sanitize {
        // ZC_SANITIZE=1 enables the same mode without the flag.
        zc_gpusim::sanitizer::set_enabled(true);
    }
    if args.serve_demo {
        return run_serve_demo(&args);
    }
    if args.requests.is_some() {
        return Err(format!(
            "--requests drives the serve demo; add --serve-demo\n{USAGE}"
        ));
    }
    if let Some(gpus) = args.fleet {
        if !args.demo {
            return Err(format!(
                "--fleet runs the built-in demo campaign; add --demo\n{USAGE}"
            ));
        }
        return run_demo_campaign(gpus, &args, &run);
    }
    if args.chaos.is_some() {
        return Err(format!(
            "--chaos injects faults into the demo fleet; add --demo --fleet <gpus>\n{USAGE}"
        ));
    }

    // Acquire the original field.
    let orig: Tensor<f32> = if args.demo {
        use zc_data::{AppDataset, GenOptions};
        let f = AppDataset::Miranda.generate_field(0, &GenOptions::scaled(8));
        eprintln!(
            "demo: synthetic MIRANDA {} field {}",
            f.name,
            f.data.shape()
        );
        f.data
    } else {
        let input = args
            .input
            .as_ref()
            .ok_or_else(|| format!("--input required\n{USAGE}"))?;
        let shape = args
            .shape
            .ok_or_else(|| format!("--shape required\n{USAGE}"))?;
        read_raw(input, shape, endian).map_err(|e| format!("{}: {e}", input.display()))?
    };

    // Static-analysis modes: --verify / --explain-plan work from the
    // lowered plan and the original field's shape alone — no decompressed
    // field is acquired and nothing executes.
    if args.verify || args.explain_plan {
        return run_static_analysis(&args, &run, orig.shape());
    }

    // Acquire the decompressed field (from disk, or via the configured
    // compressor).
    let (dec, comp_stats) = match &args.decompressed {
        Some(path) => {
            let t = read_raw(path, orig.shape(), endian)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            (t, None)
        }
        None => {
            let choice = run.compressor.ok_or_else(|| {
                "no --decompressed file and no [compressor] in config".to_string()
            })?;
            let (t, stats) = match choice {
                CompressorChoice::Sz(bound) => SzCompressor::new(bound)
                    .roundtrip(&orig)
                    .map_err(|e| format!("sz: {e}"))?,
                CompressorChoice::Zfp(rate) => ZfpLikeCompressor::new(rate)
                    .roundtrip(&orig)
                    .map_err(|e| format!("zfp: {e}"))?,
                CompressorChoice::BitGroom(keep) => BitGroomCompressor::new(keep)
                    .roundtrip(&orig)
                    .map_err(|e| format!("bitgroom: {e}"))?,
                CompressorChoice::Lossless => LosslessCompressor::new()
                    .roundtrip(&orig)
                    .map_err(|e| format!("lossless: {e}"))?,
            };
            eprintln!(
                "compressed with {:?}: ratio {:.2}x ({:.3} bits/value)",
                choice,
                stats.ratio(),
                stats.bit_rate(4)
            );
            (t, Some(stats))
        }
    };

    // Assess: lower the metric selection to a pass plan, run it.
    let executor = make_executor_with_device_mem(run.executor, args.device_mem);
    // Echo the slab schedule a device run will use (out-of-core fields
    // stream; a Capacity error surfaces below with the same numbers).
    let capacity = match run.executor {
        zc_core::ExecutorKind::CuZc | zc_core::ExecutorKind::MoZc => Some(
            args.device_mem
                .unwrap_or_else(|| zc_gpusim::GpuSim::v100().dev.mem_bytes),
        ),
        _ => None,
    };
    if let Some(cap) = capacity {
        let pair = orig.shape().len() as u64 * 4 * 2;
        let planes = (orig.shape().nz() * orig.shape().nw()).max(1);
        if let Ok(slabs) = zc_core::plan::resolve_slabs(run.assess.tiling, pair, planes, Some(cap))
        {
            eprintln!(
                "tiling: {slabs} slab(s) for a {pair}-byte pair on a {cap}-byte device{}",
                if pair > cap { " (out-of-core)" } else { "" }
            );
        }
    }
    let plan = AssessPlan::lower(&run.assess);
    let mut a = executor
        .run_plan(&plan, &orig, &dec, &run.assess)
        .map_err(|e| format!("assessment failed: {e}"))?;
    if let Some(stats) = comp_stats {
        a.report = a.report.with_compression(stats);
    }

    // Report.
    println!("cuZ-Checker ({} executor)", executor.name());
    print!("{}", a.report.render(&run.assess.metrics));
    if a.modeled_seconds > 0.0 {
        println!(
            "modeled platform time: {:.4} ms (p1 {:.3e}s, p2 {:.3e}s, p3 {:.3e}s)",
            a.modeled_seconds * 1e3,
            a.pattern_times.p1,
            a.pattern_times.p2,
            a.pattern_times.p3
        );
    }
    if let Some(e2e) = &a.e2e {
        println!(
            "modeled end-to-end: {:.4} ms overlapped / {:.4} ms serialized (h2d {:.3e}s, d2h {:.3e}s)",
            e2e.overlapped_s * 1e3,
            e2e.serialized_s * 1e3,
            e2e.h2d_s,
            e2e.d2h_s
        );
    }
    for p in &a.profiles {
        println!(
            "profile {:?}: Regs/TB={} SMem/TB={}B Iters/thread={} concTB/SM={}",
            p.pattern, p.regs_per_tb, p.smem_per_tb, p.iters_per_thread, p.blocks_per_sm
        );
    }
    if args.trace {
        use zc_gpusim::cost::gpu_time;
        use zc_gpusim::{launch_summary, occupancy, GpuSim};
        let sim = GpuSim::v100();
        println!();
        for run in &a.runs {
            if let Some(res) = run.resources {
                let occ = occupancy(&sim.dev, &res);
                let t = gpu_time(
                    &sim.dev,
                    &sim.calib,
                    &run.counters,
                    &occ,
                    run.grid_blocks.max(1),
                    run.class,
                );
                print!(
                    "{}",
                    launch_summary(
                        &format!("{:?}", run.pattern),
                        run.grid_blocks,
                        &run.counters,
                        &occ,
                        &t
                    )
                );
            }
        }
    }

    // Optional artifacts.
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let w = |name: &str, text: String| -> Result<(), String> {
            let p = dir.join(name);
            std::fs::write(&p, text).map_err(|e| format!("{}: {e}", p.display()))?;
            eprintln!("wrote {}", p.display());
            Ok(())
        };
        w("scalars.csv", scalars_csv(&a, &run.assess.metrics))?;
        if let Some(h) = &a.report.histograms {
            w("err_pdf.csv", histogram_csv(&h.err_pdf))?;
            w("pwr_err_pdf.csv", histogram_csv(&h.rel_pdf))?;
            w("value_hist.csv", histogram_csv(&h.value_hist))?;
        }
        if let Some(st) = &a.report.stencil {
            w("autocorr.csv", autocorr_csv(&st.autocorr.values))?;
        }
    }
    if let Some(html) = &args.html {
        let doc = zc_core::viz::html_report("cuZ-Checker report", &a, &run.assess.metrics);
        std::fs::write(html, doc).map_err(|e| format!("{}: {e}", html.display()))?;
        eprintln!("wrote {}", html.display());
    }
    if let Some(pgm) = &args.pgm {
        let z = orig.shape().nz() / 2;
        write_pgm_slice(pgm, &orig, z).map_err(|e| format!("{}: {e}", pgm.display()))?;
        eprintln!("wrote {} (slice z={z})", pgm.display());
    }

    sanitizer_verdict()
}

/// The `--verify` / `--explain-plan` modes: lower the plan, print its
/// static footprint (explain), run the plan verifier plus the kernel
/// lints (verify), and exit without assessing. Error-severity diagnostics
/// exit 4 — distinct from usage errors (2) and sanitizer hazards (3).
fn run_static_analysis(args: &Args, run: &RunConfig, shape: Shape) -> Result<ExitCode, String> {
    use zc_core::plan::{footprint, verify, BackendCaps};
    let plan = AssessPlan::lower(&run.assess);
    let caps = BackendCaps::for_kind(run.executor, args.device_mem);

    if args.explain_plan {
        let fp = footprint(&plan, shape, &run.assess, &caps);
        println!("assessment plan for {shape} ({:?} executor)", run.executor);
        for p in &fp.passes {
            let deps = if p.deps.is_empty() {
                "-".to_string()
            } else {
                p.deps
                    .iter()
                    .map(|d| format!("{d:?}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let (smem, regs, threads) = match &p.resources {
                Some(r) => (
                    format!("{}", r.smem_per_block),
                    format!("{}", r.regs_per_block()),
                    format!("{}", r.threads_per_block),
                ),
                None => ("-".into(), "-".into(), "-".into()),
            };
            println!(
                "  {:15} deps={:10} {}smem/TB={smem}B regs/TB={regs} threads/TB={threads} \
                 est {:.2e} B / {:.2e} flops / {} launch(es)",
                format!("{:?}", p.kind),
                deps,
                if p.auxiliary { "auxiliary " } else { "" },
                p.est_bytes,
                p.est_flops,
                p.est_launches
            );
        }
        match &fp.slabs {
            Ok(slabs) => {
                print!(
                    "  slab window: {} slab(s) over {} plane(s), pair {} B",
                    slabs, fp.planes, fp.pair_bytes
                );
                match fp.resident_bytes {
                    Some(r) => println!(", resident window {r} B"),
                    None => println!(" (host-resident)"),
                }
            }
            Err(e) => println!("  slab window: unresolvable — {e}"),
        }
        if !args.verify {
            return Ok(ExitCode::SUCCESS);
        }
    }

    let mut diags = verify(&plan, shape, &run.assess, &caps);
    match zc_lint::find_kernels_src() {
        Some(src) => {
            eprintln!("verify: linting kernel sources in {}", src.display());
            diags.extend(zc_lint::lint_dir(&src).map_err(|e| format!("{}: {e}", src.display()))?);
        }
        None => eprintln!("verify: kernel sources not found — plan checks only"),
    }
    print!("{}", zc_lint::render_table(&diags));
    Ok(if zc_lint::error_count(&diags) > 0 {
        ExitCode::from(4)
    } else {
        ExitCode::SUCCESS
    })
}

/// Drain the sanitizer sink and fail loudly on hazards (exit 3); a no-op
/// success when the sanitizer is off.
fn sanitizer_verdict() -> Result<ExitCode, String> {
    if zc_gpusim::sanitizer::enabled() {
        let s = zc_gpusim::sanitizer::drain();
        for r in &s.reports {
            eprint!("{}", r.render());
        }
        if s.dropped_reports > 0 {
            eprintln!(
                "========= {} hazardous report(s) beyond the sink cap",
                s.dropped_reports
            );
        }
        eprintln!(
            "========= ZC SANITIZER: {} launch(es) checked, {} hazard(s)",
            s.launches_checked, s.hazards
        );
        if !s.is_clean() {
            return Ok(ExitCode::from(3));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// The `--demo --fleet N` mode: a mixed-size campaign over the built-in
/// catalog — a multi-step time series next to snapshots a fraction of its
/// size — sharded by the selected scheduler over a simulated NVLink fleet.
fn run_demo_campaign(gpus: u32, args: &Args, run: &RunConfig) -> Result<ExitCode, String> {
    use zc_compress::{CompressorSpec, ErrorBound};
    use zc_data::{AppDataset, GenOptions};
    let scheduler = args.scheduler.unwrap_or_default();
    let mut fleet = FleetSpec::nvlink(gpus);
    if let Some((seed, rate_permille)) = args.chaos {
        fleet = fleet.with_faults(zc_gpusim::FaultPlan::chaos(seed, rate_permille));
    }
    let spec = CampaignSpec {
        fields: vec![
            FieldRef::timeseries(AppDataset::Hurricane, 9, GenOptions::scaled(16), 4),
            FieldRef::new(AppDataset::Nyx, 2, GenOptions::scaled(16)),
            FieldRef::new(AppDataset::Miranda, 0, GenOptions::scaled(16)),
            FieldRef::new(AppDataset::Hurricane, 5, GenOptions::scaled(16)),
        ],
        compressors: vec![
            CompressorSpec::Sz(ErrorBound::Rel(1e-3)),
            CompressorSpec::Zfp(12.0),
        ],
        cfg: zc_core::AssessConfig {
            max_lag: 3,
            bins: 32,
            tiling: run.assess.tiling,
            ..Default::default()
        },
        fleet,
        scheduler,
        // The demo bar sits far below SZ-1e-3 / ZFP-12 quality, so every
        // job's prepass is decidable and the campaign shows the prune.
        progressive: args.progressive.then(|| {
            ProgressivePolicy::new(QualityCriteria {
                min_psnr_db: Some(40.0),
                ..Default::default()
            })
        }),
        recovery: RecoveryPolicy::default(),
    };
    eprintln!(
        "demo campaign: {} jobs on {gpus} simulated GPUs ({} scheduler{}{})",
        spec.fields.len() * spec.compressors.len(),
        scheduler.label(),
        if args.progressive {
            ", progressive prepass"
        } else {
            ""
        },
        match args.chaos {
            Some((seed, rate)) => format!(", chaos seed {seed} @ {rate}\u{2030}"),
            None => String::new(),
        }
    );
    let report = match spec.run() {
        Ok(r) => r,
        // A fully dead fleet is a chaos verdict (exit 5), not a usage or
        // internal error: the campaign engine did its job and reported
        // that no recovery was possible.
        Err(e @ zc_core::campaign::CampaignError::AllDevicesDead { .. }) => {
            eprintln!("campaign failed: {e}");
            return Ok(ExitCode::from(5));
        }
        Err(e) => return Err(format!("campaign failed: {e}")),
    };
    print!("{}", report.render_table());
    let verdict = sanitizer_verdict()?;
    if verdict != ExitCode::SUCCESS {
        return Ok(verdict);
    }
    // Chaos verdict: a campaign that lost jobs to fault-retry exhaustion
    // completed degraded — surface it as exit 5 so CI can gate on it.
    if let Some(rec) = &report.recovery {
        if rec.completion < 1.0 {
            eprintln!(
                "chaos: {} job(s) lost after retry exhaustion (completion {:.1}%)",
                rec.lost_jobs,
                rec.completion * 100.0
            );
            return Ok(ExitCode::from(5));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// The `--serve-demo` mode: open a resident service session on a
/// simulated fleet, replay a seeded synthetic request trace through the
/// offer/batch/drain loop, and print the serve report. Exit 6 when a
/// saturated service completed nothing — distinct from usage (2),
/// sanitizer (3), verify (4) and chaos (5) verdicts.
fn run_serve_demo(args: &Args) -> Result<ExitCode, String> {
    use zc_serve::{RequestTrace, ServeConfig, Server};
    let gpus = args.fleet.unwrap_or(4);
    let (seed, count) = args.requests.unwrap_or((42, 32));
    let mut cfg = ServeConfig::new(FleetSpec::nvlink(gpus));
    // The service batches through the cost-model list scheduler by
    // default; --scheduler overrides it.
    if let Some(s) = args.scheduler {
        cfg.scheduler = s;
    }
    eprintln!(
        "serve demo: {count} requests (seed {seed}) on {gpus} simulated GPUs \
         ({} scheduler, batch {}, quota {}/tenant, watermark {:.2}s)",
        cfg.scheduler.label(),
        cfg.batch,
        cfg.tenant_quota,
        cfg.watermark_s
    );
    let mut server = Server::new(cfg).map_err(|e| format!("serve: {e}"))?;
    let trace = RequestTrace::synthetic(seed, count);
    let report = server.run_trace(&trace);
    print!("{}", report.render_table());
    let verdict = sanitizer_verdict()?;
    if verdict != ExitCode::SUCCESS {
        return Ok(verdict);
    }
    if report.completed == 0 {
        eprintln!("serve: saturated — no requests completed");
        return Ok(ExitCode::from(6));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
