//! zc-serve — the resident assessment service over the engine core.
//!
//! Z-checker's original framing (Di et al., IJHPCA 2017) is assessment as
//! a reusable *service layer*: compressor developers and users query the
//! same fields under overlapping metric sets, repeatedly. This crate is
//! that shape, built on [`zc_core::engine`]:
//!
//! * a **request loop** ([`Server`]): requests arrive (modeled arrival
//!   times), pass admission, batch up, and drain onto the simulated fleet
//!   as one shard-scheduled batch per window;
//! * **admission control**: structural validation and static plan
//!   verification happen at [`Server::offer`] time, via the engine (a
//!   refused request never occupies the queue);
//! * **per-tenant quotas**: each tenant may hold at most a fixed number of
//!   queued requests per batch window — one chatty tenant cannot starve
//!   the rest;
//! * **backpressure**: when the fleet's modeled backlog (time still owed
//!   on previous batches plus the estimated cost of the queue) exceeds an
//!   occupancy watermark, [`Server::offer`] returns the typed
//!   [`ServeError::Saturated`] instead of queueing unboundedly;
//! * **caching for free**: the engine's content-addressed result cache
//!   turns the service's overlapping traffic into full and partial hits —
//!   the exact access pattern the cache exists for.
//!
//! Everything is deterministic: traces are seeded ([`RequestTrace`]),
//! time is modeled (no wall clock), the engine drains in ticket order, and
//! results are bit-identical at any `ZC_PAR_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use zc_compress::{CompressorSpec, ErrorBound};
use zc_core::campaign::{FieldRef, FleetSpec, JobOutcome, Scheduler};
use zc_core::engine::{AssessRequest, CacheOutcome, CacheStats, Engine, EngineError, JobTicket};
use zc_core::metrics::{Metric, MetricSelection};
use zc_core::AssessConfig;
use zc_data::{AppDataset, GenOptions};

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The simulated fleet the service runs on.
    pub fleet: FleetSpec,
    /// Job-placement policy for each drained batch (default: the
    /// cost-model list scheduler — the service exists to batch well).
    pub scheduler: Scheduler,
    /// Queued requests per batch window; the queue drains when full.
    pub batch: usize,
    /// Max queued requests one tenant may hold per batch window.
    pub tenant_quota: usize,
    /// Modeled-backlog watermark (seconds): offers are refused with
    /// [`ServeError::Saturated`] while the backlog exceeds it.
    pub watermark_s: f64,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
}

impl ServeConfig {
    /// Service defaults on a fleet: list scheduling, 8-request batches,
    /// 4 requests per tenant per window, a 0.5 s modeled-backlog
    /// watermark, 256 cache entries.
    pub fn new(fleet: FleetSpec) -> Self {
        ServeConfig {
            fleet,
            scheduler: Scheduler::List,
            batch: 8,
            tenant_quota: 4,
            watermark_s: 0.5,
            cache_entries: 256,
        }
    }
}

/// Typed service refusals. A refusal is data, not a crash: the caller
/// (or the trace loop) records it and the service keeps running.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Modeled fleet backlog exceeds the occupancy watermark; retry after
    /// the current batches drain.
    Saturated {
        /// The modeled backlog at refusal time (seconds).
        backlog_s: f64,
    },
    /// The tenant already holds its quota of queued requests this window.
    QuotaExceeded {
        /// The refused tenant.
        tenant: u32,
    },
    /// Static plan verification refused the request (device-envelope
    /// overflow or a malformed plan).
    Admission(String),
    /// The request is structurally invalid (bad assessment config).
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Saturated { backlog_s } => {
                write!(
                    f,
                    "saturated: modeled backlog {backlog_s:.3}s over watermark"
                )
            }
            ServeError::QuotaExceeded { tenant } => {
                write!(f, "tenant {tenant} exceeded its queued-request quota")
            }
            ServeError::Admission(m) => write!(f, "admission: {m}"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One service request: who asks, when (modeled), and what to assess.
#[derive(Clone, Debug)]
pub struct ServeRequest {
    /// Requesting tenant.
    pub tenant: u32,
    /// Modeled arrival time (seconds since trace start, non-decreasing).
    pub arrival_s: f64,
    /// The assessment asked for.
    pub request: AssessRequest,
}

/// A deterministic synthetic request trace: seeded, skewed, and
/// reproducible bit-for-bit from `(seed, count)` alone.
///
/// The skew is the service's reason to exist: a small hot set of
/// (field, codec) pairs dominates, and metric selections overlap but
/// rarely coincide — so a content-addressed cache sees full hits on exact
/// repeats and partial hits when a later request widens the metric set.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// The requests, in arrival order.
    pub requests: Vec<ServeRequest>,
}

/// SplitMix64 — the repo's stock deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from one SplitMix64 draw.
fn u01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl RequestTrace {
    /// The hot field pool: small scaled catalog fields, heavily skewed
    /// (the first entries absorb most of the traffic).
    fn field_pool() -> Vec<FieldRef> {
        vec![
            FieldRef::new(AppDataset::Miranda, 0, GenOptions::scaled(32)),
            FieldRef::new(AppDataset::Nyx, 2, GenOptions::scaled(32)),
            FieldRef::new(AppDataset::Hurricane, 5, GenOptions::scaled(32)),
            FieldRef::new(AppDataset::Nyx, 0, GenOptions::scaled(32)),
            FieldRef::new(AppDataset::Hurricane, 9, GenOptions::scaled(32)),
            FieldRef::new(AppDataset::Miranda, 3, GenOptions::scaled(32)),
        ]
    }

    /// The codec pool (also skewed toward the first entry).
    fn codec_pool() -> Vec<CompressorSpec> {
        vec![
            CompressorSpec::Sz(ErrorBound::Rel(1e-3)),
            CompressorSpec::Zfp(12.0),
            CompressorSpec::Sz(ErrorBound::Abs(1e-2)),
        ]
    }

    /// The overlapping metric selections real clients ask for: a scalar
    /// screen, a scalar+SSIM check, and the full profile. Sharing one
    /// cache entry across these is the partial-hit path.
    fn metric_pool() -> Vec<MetricSelection> {
        vec![
            MetricSelection::none().with(Metric::Psnr).with(Metric::Mse),
            MetricSelection::none()
                .with(Metric::Psnr)
                .with(Metric::Ssim),
            MetricSelection::all(),
        ]
    }

    /// Draw an index in `[0, n)` with geometric-ish skew: index 0 is
    /// roughly twice as likely as index 1, and so on.
    fn skewed_index(state: &mut u64, n: usize) -> usize {
        // Geometric: P(0)=1/2, P(1)=1/4, … — index 0 is the hot one.
        let mut i = 0;
        while i + 1 < n && u01(state) < 0.5 {
            i += 1;
        }
        i
    }

    /// Generate `count` requests from `seed`: skewed field/codec/metric
    /// draws, four tenants (tenant 0 hottest), and exponential-flavored
    /// inter-arrival gaps with a mean of 2 ms of modeled time.
    pub fn synthetic(seed: u64, count: usize) -> RequestTrace {
        let fields = Self::field_pool();
        let codecs = Self::codec_pool();
        let metrics = Self::metric_pool();
        let mut state = seed ^ 0x5eed_cafe_f00d_d00d;
        let mut now = 0.0f64;
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            let field = fields[Self::skewed_index(&mut state, fields.len())].clone();
            let compressor = codecs[Self::skewed_index(&mut state, codecs.len())];
            let selection = metrics[Self::skewed_index(&mut state, metrics.len())].clone();
            let tenant = Self::skewed_index(&mut state, 4) as u32;
            // Inter-arrival: -ln(U) * mean, clamped away from 0 to keep
            // arrival order strict.
            let gap = (-(1.0 - u01(&mut state)).ln()).max(1e-6) * 2e-3;
            now += gap;
            requests.push(ServeRequest {
                tenant,
                arrival_s: now,
                request: AssessRequest {
                    field,
                    compressor,
                    cfg: AssessConfig {
                        max_lag: 3,
                        bins: 32,
                        metrics: selection,
                        ..Default::default()
                    },
                },
            });
        }
        RequestTrace { requests }
    }
}

/// Per-request service verdicts, in trace order.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Accepted and completed; the fields are (modeled latency seconds,
    /// cache outcome, assessed bytes, PSNR).
    Done {
        /// Modeled arrival→completion latency (seconds).
        latency_s: f64,
        /// How the result cache participated.
        cache: CacheOutcome,
        /// Field bytes this request's assessment actually read.
        assessed_bytes: u64,
        /// The job's PSNR, as exact bits (determinism checks compare it).
        psnr_bits: u64,
    },
    /// Accepted but the job failed during execution (codec/assess error).
    Failed(String),
    /// Refused at offer time.
    Refused(ServeError),
}

/// The service report for one trace run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Verdict per trace request, in trace order.
    pub verdicts: Vec<Verdict>,
    /// Completed jobs.
    pub completed: usize,
    /// Refusals by saturation backpressure.
    pub saturated: usize,
    /// Refusals by tenant quota.
    pub quota_refused: usize,
    /// Refusals by admission / bad request.
    pub admission_refused: usize,
    /// Jobs that failed during execution.
    pub failed: usize,
    /// Sustained completed jobs per modeled second (completions over the
    /// span from first arrival to last completion).
    pub jobs_per_sec: f64,
    /// Median modeled latency over completed jobs (seconds).
    pub p50_latency_s: f64,
    /// 99th-percentile modeled latency over completed jobs (seconds).
    pub p99_latency_s: f64,
    /// Total field bytes assessed (cache hits read zero).
    pub assessed_bytes: u64,
    /// Engine cache counters after the run.
    pub cache: CacheStats,
    /// Modeled completion time of the last batch (seconds).
    pub makespan_s: f64,
}

impl ServeReport {
    /// Render the service summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<26} {:>10}\n", "serve metric", "value"));
        let rows: Vec<(&str, String)> = vec![
            ("requests", format!("{}", self.verdicts.len())),
            ("completed", format!("{}", self.completed)),
            ("failed", format!("{}", self.failed)),
            ("refused: saturated", format!("{}", self.saturated)),
            ("refused: quota", format!("{}", self.quota_refused)),
            ("refused: admission", format!("{}", self.admission_refused)),
            ("jobs/s (modeled)", format!("{:.1}", self.jobs_per_sec)),
            (
                "p50 latency (ms)",
                format!("{:.3}", self.p50_latency_s * 1e3),
            ),
            (
                "p99 latency (ms)",
                format!("{:.3}", self.p99_latency_s * 1e3),
            ),
            ("cache hit rate", format!("{:.3}", self.cache.hit_rate())),
            (
                "cache partial rate",
                format!("{:.3}", self.cache.partial_rate()),
            ),
            (
                "assessed MB",
                format!("{:.2}", self.assessed_bytes as f64 / 1e6),
            ),
            ("makespan (ms)", format!("{:.3}", self.makespan_s * 1e3)),
        ];
        for (k, v) in rows {
            out.push_str(&format!("{k:<26} {v:>10}\n"));
        }
        out
    }
}

/// Percentile by nearest-rank over a sorted slice (0 for an empty one).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The resident service: an engine session plus the request loop's
/// admission, quota, and backpressure state.
pub struct Server {
    engine: Engine,
    cfg: ServeConfig,
    /// Modeled time the fleet finishes everything drained so far.
    free_at_s: f64,
    /// Estimated seconds of the queued (undrained) requests.
    queued_est_s: f64,
    /// Queued requests per tenant this window.
    tenant_queued: Vec<usize>,
    /// (ticket, tenant, arrival) of queued requests, in ticket order.
    queued: Vec<(JobTicket, u32, f64)>,
}

impl Server {
    /// Open the service: validates the fleet and runs the engine's
    /// calibration probe.
    pub fn new(cfg: ServeConfig) -> Result<Server, ServeError> {
        let engine = Engine::new(cfg.fleet)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?
            .with_scheduler(cfg.scheduler)
            .with_cache_entries(cfg.cache_entries);
        Ok(Server {
            engine,
            cfg,
            free_at_s: 0.0,
            queued_est_s: 0.0,
            tenant_queued: Vec::new(),
            queued: Vec::new(),
        })
    }

    /// The modeled backlog at time `now_s`: seconds still owed on drained
    /// batches plus the calibrated estimate of the queue.
    pub fn backlog_s(&self, now_s: f64) -> f64 {
        (self.free_at_s - now_s).max(0.0) + self.queued_est_s
    }

    /// Offer one request to the service at its arrival time. Quota and
    /// watermark are checked before admission so a saturated service does
    /// no verification work.
    pub fn offer(&mut self, req: &ServeRequest) -> Result<JobTicket, ServeError> {
        let tenant = req.tenant as usize;
        if self.tenant_queued.len() <= tenant {
            self.tenant_queued.resize(tenant + 1, 0);
        }
        if self.tenant_queued[tenant] >= self.cfg.tenant_quota {
            return Err(ServeError::QuotaExceeded { tenant: req.tenant });
        }
        let backlog = self.backlog_s(req.arrival_s);
        if backlog > self.cfg.watermark_s {
            return Err(ServeError::Saturated { backlog_s: backlog });
        }
        let ticket = self
            .engine
            .submit(req.request.clone())
            .map_err(|e| match e {
                EngineError::Admission(m) => ServeError::Admission(m),
                EngineError::BadConfig(m) | EngineError::BadFleet(m) => ServeError::BadRequest(m),
            })?;
        self.queued_est_s += self.engine.estimate_seconds(&req.request);
        self.tenant_queued[tenant] += 1;
        self.queued.push((ticket, req.tenant, req.arrival_s));
        Ok(ticket)
    }

    /// Whether the queue has reached the batch size.
    pub fn batch_ready(&self) -> bool {
        self.queued.len() >= self.cfg.batch
    }

    /// Drain the queued batch at modeled time `now_s`. Returns
    /// (ticket, tenant, arrival, completion, result) per queued request,
    /// in ticket order; the window's quota counters reset.
    #[allow(clippy::type_complexity)]
    pub fn drain(
        &mut self,
        now_s: f64,
    ) -> Vec<(JobTicket, u32, f64, f64, zc_core::engine::JobResult)> {
        if self.queued.is_empty() {
            return Vec::new();
        }
        let start = self.free_at_s.max(now_s);
        let batch = self.engine.drain();
        let completion = start + batch.fleet.makespan_s;
        self.free_at_s = completion;
        self.queued_est_s = 0.0;
        self.tenant_queued.clear();
        let queued = std::mem::take(&mut self.queued);
        queued
            .into_iter()
            .zip(batch.results)
            .map(|((ticket, tenant, arrival), result)| {
                debug_assert_eq!(ticket, result.ticket);
                (ticket, tenant, arrival, completion, result)
            })
            .collect()
    }

    /// Engine cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Run a whole trace through the loop: offer each request at its
    /// arrival time, drain whenever the batch fills, flush at the end,
    /// and fold the verdicts into a [`ServeReport`].
    pub fn run_trace(&mut self, trace: &RequestTrace) -> ServeReport {
        let n = trace.requests.len();
        let mut verdicts: Vec<Option<Verdict>> = vec![None; n];
        let mut ticket_slot: Vec<(JobTicket, usize)> = Vec::new();
        let mut latencies = Vec::new();
        let mut completed = 0usize;
        let (mut saturated, mut quota_refused, mut admission_refused, mut failed) = (0, 0, 0, 0);
        let mut assessed_bytes = 0u64;
        let mut last_completion = 0.0f64;
        let mut settle = |drained: Vec<(JobTicket, u32, f64, f64, zc_core::engine::JobResult)>,
                          ticket_slot: &mut Vec<(JobTicket, usize)>,
                          verdicts: &mut Vec<Option<Verdict>>| {
            for (ticket, _tenant, arrival, completion, result) in drained {
                let slot = ticket_slot
                    .iter()
                    .find(|(t, _)| *t == ticket)
                    .map(|(_, s)| *s)
                    .expect("every drained ticket was offered");
                last_completion = last_completion.max(completion);
                let verdict = match result.outcome {
                    JobOutcome::Done(m) => {
                        completed += 1;
                        let latency = completion - arrival;
                        latencies.push(latency);
                        assessed_bytes += m.assessed_bytes;
                        Verdict::Done {
                            latency_s: latency,
                            cache: result.cache,
                            assessed_bytes: m.assessed_bytes,
                            psnr_bits: m.psnr.to_bits(),
                        }
                    }
                    JobOutcome::Failed(msg) => {
                        failed += 1;
                        Verdict::Failed(msg)
                    }
                };
                verdicts[slot] = Some(verdict);
            }
        };
        for (i, req) in trace.requests.iter().enumerate() {
            match self.offer(req) {
                Ok(ticket) => ticket_slot.push((ticket, i)),
                Err(e) => {
                    match &e {
                        ServeError::Saturated { .. } => saturated += 1,
                        ServeError::QuotaExceeded { .. } => quota_refused += 1,
                        ServeError::Admission(_) | ServeError::BadRequest(_) => {
                            admission_refused += 1
                        }
                    }
                    verdicts[i] = Some(Verdict::Refused(e));
                    continue;
                }
            }
            if self.batch_ready() {
                let drained = self.drain(req.arrival_s);
                settle(drained, &mut ticket_slot, &mut verdicts);
            }
        }
        let end = trace.requests.last().map(|r| r.arrival_s).unwrap_or(0.0);
        let drained = self.drain(end);
        settle(drained, &mut ticket_slot, &mut verdicts);
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let first_arrival = trace.requests.first().map(|r| r.arrival_s).unwrap_or(0.0);
        let span = (last_completion - first_arrival).max(f64::EPSILON);
        ServeReport {
            verdicts: verdicts
                .into_iter()
                .map(|v| v.expect("every request got a verdict"))
                .collect(),
            completed,
            saturated,
            quota_refused,
            admission_refused,
            failed,
            jobs_per_sec: if completed > 0 {
                completed as f64 / span
            } else {
                0.0
            },
            p50_latency_s: percentile(&latencies, 0.50),
            p99_latency_s: percentile(&latencies, 0.99),
            assessed_bytes,
            cache: self.cache_stats(),
            makespan_s: last_completion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            batch: 4,
            ..ServeConfig::new(FleetSpec::nvlink(2))
        }
    }

    #[test]
    fn trace_is_deterministic_from_its_seed() {
        let a = RequestTrace::synthetic(7, 20);
        let b = RequestTrace::synthetic(7, 20);
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.arrival_s.to_bits(), y.arrival_s.to_bits());
            assert_eq!(
                x.request.field.qualified_name(),
                y.request.field.qualified_name()
            );
            assert_eq!(x.request.compressor.label(), y.request.compressor.label());
        }
        let c = RequestTrace::synthetic(8, 20);
        assert!(a
            .requests
            .iter()
            .zip(&c.requests)
            .any(|(x, y)| x.arrival_s != y.arrival_s));
    }

    #[test]
    fn trace_is_skewed_toward_a_hot_set() {
        let t = RequestTrace::synthetic(3, 200);
        let hot_name = RequestTrace::field_pool()[0].qualified_name();
        let hot = t
            .requests
            .iter()
            .filter(|r| r.request.field.qualified_name() == hot_name)
            .count();
        // Index 0 of the pool should absorb roughly half the traffic.
        assert!(hot > 60, "hot field drew only {hot}/200");
    }

    #[test]
    fn served_trace_completes_and_caches() {
        let mut server = Server::new(small_cfg()).unwrap();
        let report = server.run_trace(&RequestTrace::synthetic(11, 24));
        assert!(report.completed > 0);
        assert_eq!(
            report.completed
                + report.failed
                + report.saturated
                + report.quota_refused
                + report.admission_refused,
            24
        );
        assert_eq!(report.failed, 0);
        // The skewed trace must produce repeat traffic the cache absorbs.
        assert!(report.cache.hits + report.cache.partial_hits > 0);
        assert!(report.jobs_per_sec > 0.0);
        assert!(report.p99_latency_s >= report.p50_latency_s);
    }

    #[test]
    fn quota_refuses_the_chatty_tenant() {
        let mut server = Server::new(ServeConfig {
            tenant_quota: 1,
            batch: 100, // never auto-drains: quotas must bite first
            ..small_cfg()
        })
        .unwrap();
        let trace = RequestTrace::synthetic(5, 12);
        let mut quota_hits = 0;
        for req in &trace.requests {
            if let Err(ServeError::QuotaExceeded { .. }) = server.offer(req) {
                quota_hits += 1;
            }
        }
        assert!(quota_hits > 0, "12 skewed requests, quota 1, no refusals?");
    }

    #[test]
    fn watermark_saturates_the_service() {
        let mut server = Server::new(ServeConfig {
            watermark_s: 0.0,
            ..small_cfg()
        })
        .unwrap();
        // Drain something first so free_at > 0, then the next offer at
        // t=0 sees backlog > 0 = watermark.
        let trace = RequestTrace::synthetic(2, 6);
        let report = server.run_trace(&trace);
        assert!(
            report.saturated > 0,
            "zero watermark must shed load: {report:?}"
        );
    }
}
