//! Determinism tier: a served trace is bit-identical at every host worker
//! count.
//!
//! The engine generates batch fields host-parallel but index-ordered, and
//! executes in ticket order; the service loop adds only modeled time. So
//! the entire serve report — every verdict, every latency bit, every cache
//! counter — must be `==` at 1 worker, 2 workers, and the machine's full
//! parallelism. Kept as a single `#[test]` because the `ZC_PAR_THREADS`
//! override is process-global.

use zc_core::campaign::FleetSpec;
use zc_serve::{RequestTrace, ServeConfig, ServeReport, Server};

fn run_once() -> ServeReport {
    let mut server = Server::new(ServeConfig {
        batch: 4,
        ..ServeConfig::new(FleetSpec::nvlink(2))
    })
    .expect("open service");
    server.run_trace(&RequestTrace::synthetic(17, 24))
}

fn assert_reports_identical(a: &ServeReport, b: &ServeReport, ctx: &str) {
    assert_eq!(a.verdicts, b.verdicts, "{ctx}: verdicts");
    assert_eq!(a.completed, b.completed, "{ctx}: completed");
    assert_eq!(a.assessed_bytes, b.assessed_bytes, "{ctx}: assessed bytes");
    assert_eq!(a.cache, b.cache, "{ctx}: cache counters");
    for (name, va, vb) in [
        ("jobs_per_sec", a.jobs_per_sec, b.jobs_per_sec),
        ("p50", a.p50_latency_s, b.p50_latency_s),
        ("p99", a.p99_latency_s, b.p99_latency_s),
        ("makespan", a.makespan_s, b.makespan_s),
    ] {
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{ctx}: {name} differs across worker counts: {va:?} vs {vb:?}"
        );
    }
}

#[test]
fn served_trace_is_bit_identical_across_worker_counts() {
    std::env::set_var("ZC_PAR_THREADS", "1");
    assert_eq!(zc_par::max_threads(), 1, "override must be live");
    let one = run_once();
    std::env::set_var("ZC_PAR_THREADS", "2");
    assert_eq!(zc_par::max_threads(), 2, "override must be live");
    let two = run_once();
    std::env::remove_var("ZC_PAR_THREADS");
    let max = run_once();
    assert_reports_identical(&one, &two, "1 vs 2 workers");
    assert_reports_identical(&one, &max, "1 vs max workers");
}
