//! End-to-end tests of the `cuzc` command-line tool (spawned as a real
//! process via the Cargo-provided binary path).

use std::path::PathBuf;
use std::process::Command;

fn cuzc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cuzc"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cuzc_cli_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn demo_run_prints_a_full_report() {
    let out = cuzc().arg("--demo").output().expect("spawn cuzc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "psnr",
        "ssim",
        "autocorr",
        "compression_ratio",
        "modeled platform time",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
}

#[test]
fn demo_writes_html_and_csv_artifacts() {
    let dir = tmpdir("artifacts");
    let html = dir.join("report.html");
    let out = cuzc()
        .args(["--demo", "--html"])
        .arg(&html)
        .arg("--csv-dir")
        .arg(&dir)
        .output()
        .expect("spawn cuzc");
    assert!(out.status.success());
    let doc = std::fs::read_to_string(&html).unwrap();
    assert!(doc.starts_with("<!DOCTYPE html>"));
    assert!(doc.contains("<svg"));
    for f in ["scalars.csv", "err_pdf.csv", "autocorr.csv"] {
        let p = dir.join(f);
        assert!(p.exists(), "{f} missing");
        assert!(std::fs::metadata(&p).unwrap().len() > 10);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_pipeline_with_explicit_decompressed_field() {
    // Write a raw field and a perturbed copy, assess them from disk.
    let dir = tmpdir("files");
    let orig_path = dir.join("orig.f32");
    let dec_path = dir.join("dec.f32");
    let n = 16 * 12 * 10;
    let orig: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
    let dec: Vec<f32> = orig.iter().map(|v| v + 1e-3).collect();
    let bytes = |v: &[f32]| v.iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>();
    std::fs::write(&orig_path, bytes(&orig)).unwrap();
    std::fs::write(&dec_path, bytes(&dec)).unwrap();

    let out = cuzc()
        .args(["--input"])
        .arg(&orig_path)
        .args(["--shape", "16x12x10", "--decompressed"])
        .arg(&dec_path)
        .output()
        .expect("spawn cuzc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Constant error of 1e-3 (up to f32 rounding): parse avg_err back.
    let avg_line = stdout
        .lines()
        .find(|l| l.starts_with("avg_err"))
        .expect("avg_err line");
    let value: f64 = avg_line.split('=').nth(1).unwrap().trim().parse().unwrap();
    assert!((value - 1e-3).abs() < 1e-6, "{avg_line}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_arguments_fail_cleanly() {
    // Unknown flag.
    let out = cuzc().arg("--frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
    // Missing value.
    let out = cuzc().arg("--shape").output().unwrap();
    assert!(!out.status.success());
    // Bad shape.
    let out = cuzc()
        .args(["--input", "/nonexistent", "--shape", "axb"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad shape"));
    // Missing input file.
    let out = cuzc()
        .args(["--input", "/nonexistent.f32", "--shape", "4x4x4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn metrics_flag_restricts_the_report() {
    let out = cuzc()
        .args(["--demo", "--metrics", "psnr,ssim"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("psnr"), "{stdout}");
    assert!(stdout.contains("ssim"), "{stdout}");
    // Unselected metrics are gone, and so is the pattern-2 pass entirely.
    assert!(!stdout.contains("autocorr"), "{stdout}");
    assert!(!stdout.contains("mse"), "{stdout}");
    let p2_line = stdout
        .lines()
        .find(|l| l.contains("p2 "))
        .expect("pattern time line");
    assert!(p2_line.contains("p2 0.000e0s"), "{p2_line}");
    // The device executor reports the modeled transfer+compute makespan.
    assert!(stdout.contains("modeled end-to-end"), "{stdout}");
}

#[test]
fn unknown_metric_key_lists_all_known_keys() {
    let out = cuzc()
        .args(["--demo", "--metrics", "psnr,definitely_not_a_metric"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown metric 'definitely_not_a_metric'"),
        "{stderr}"
    );
    // The error enumerates every valid key.
    for key in ["min_value", "psnr", "ssim", "autocorr", "compression_ratio"] {
        assert!(stderr.contains(key), "missing '{key}' in:\n{stderr}");
    }
}

#[test]
fn fleet_flag_runs_the_demo_campaign() {
    let out = cuzc()
        .args(["--demo", "--fleet", "4", "--scheduler", "list"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The campaign table: mixed-size catalog fields on a 4-GPU fleet,
    // with the scheduler's own makespan prediction.
    assert!(stdout.contains("Hurricane/TC[x4]"), "{stdout}");
    assert!(stdout.contains("fleet: 4 GPUs"), "{stdout}");
    assert!(stdout.contains("schedule: predicted makespan"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("list scheduler"), "{stderr}");
}

#[test]
fn progressive_campaign_marks_subsampled_rows() {
    let out = cuzc()
        .args(["--demo", "--fleet", "2", "--progressive"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(subsampled)"), "{stdout}");
}

#[test]
fn fleet_mode_rejects_bad_arguments() {
    // --fleet without --demo.
    let out = cuzc().args(["--fleet", "4"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--demo"));
    // Bad fleet size.
    let out = cuzc().args(["--demo", "--fleet", "0"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad fleet size"));
    // Unknown scheduler.
    let out = cuzc()
        .args(["--demo", "--fleet", "2", "--scheduler", "greedy"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scheduler"));
}

#[test]
fn help_is_available() {
    let out = cuzc().arg("--help").output().unwrap();
    // Help goes to stderr with a non-zero exit (it is an interrupted run).
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage: cuzc"));
    assert!(text.contains("--demo"));
}

#[test]
fn serve_demo_runs_the_service_loop() {
    let out = cuzc()
        .args(["--serve-demo", "--fleet", "2", "--requests", "7:16"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "serve metric",
        "completed",
        "jobs/s (modeled)",
        "cache hit rate",
        "p99 latency (ms)",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("16 requests (seed 7)"), "{stderr}");
    assert!(stderr.contains("2 simulated GPUs"), "{stderr}");
}

#[test]
fn serve_demo_rejects_bad_arguments() {
    // Malformed trace spec.
    let out = cuzc()
        .args(["--serve-demo", "--requests", "nope"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad requests spec"));
    // Zero-length trace.
    let out = cuzc()
        .args(["--serve-demo", "--requests", "42:0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // --requests without --serve-demo.
    let out = cuzc().args(["--requests", "7:16"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--serve-demo"));
}

#[test]
fn trace_flag_prints_launch_summaries() {
    let out = cuzc().args(["--demo", "--trace"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kernel GlobalReduction"));
    assert!(stdout.contains("kernel SlidingWindow"));
    assert!(stdout.contains("occupancy"));
    assert!(stdout.contains("modeled"));
}
