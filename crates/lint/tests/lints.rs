//! Positive/negative snippets for every registered lint: each lint must
//! fire on its minimal bad shape, stay quiet on the charged/scoped
//! equivalent, and respect both exemption-marker dialects.

use zc_lint::{error_count, lint_source, Severity, LINTS};

fn ids(src: &str) -> Vec<&'static str> {
    lint_source("snippet.rs", src)
        .into_iter()
        .map(|d| d.lint_id)
        .collect()
}

#[test]
fn registry_has_at_least_five_lints_with_stable_ids() {
    assert!(LINTS.len() >= 5, "only {} lints registered", LINTS.len());
    let mut seen = std::collections::BTreeSet::new();
    for l in LINTS {
        assert!(l.id.contains('/'), "lint id {} not category/name", l.id);
        assert!(seen.insert(l.id), "duplicate lint id {}", l.id);
    }
}

#[test]
fn uncharged_access_fires_and_charging_silences_it() {
    let bad = "fn k(t: &Tensor<f32>) {\n    let s = t.as_slice();\n    consume(s);\n}\n";
    assert_eq!(ids(bad), vec!["charging/uncharged-access"]);
    let good = "fn k(ctx: &mut Ctx, t: &Tensor<f32>) {\n    let s = t.as_slice();\n    ctx.charge_lane_reads(s.len());\n}\n";
    assert!(ids(good).is_empty());
}

#[test]
fn legacy_marker_still_waives_the_charging_lints() {
    let src = "\
// charging-lint: exempt — tensor views, charged by the caller
fn k(t: &Tensor<f32>) {
    let s = t.as_slice();
    let v = self.fields.orig[0];
}
";
    assert!(ids(src).is_empty(), "legacy marker must keep working");
}

#[test]
fn typed_marker_waives_only_the_named_lint() {
    let src = "\
// zc-lint: exempt(kernel/unscoped-shared)
fn helper(ctx: &mut Ctx) {
    ctx.sh_read(buf, i);
    let s = t.as_slice();
}
";
    // unscoped-shared is waived; uncharged-access would fire except sh_read
    // is itself a charge API, so the snippet is clean.
    assert!(ids(src).is_empty());
    let src2 = "\
// zc-lint: exempt(charging/uncharged-access)
fn helper(t: &Tensor<f32>) {
    let s = t.as_slice();
    ctx.sync_threads();
    consume(s);
}
";
    assert!(ids(src2).is_empty());
}

#[test]
fn unscoped_shared_fires_outside_warp_scope_only() {
    let bad = "fn k(ctx: &mut Ctx) {\n    ctx.sh_write(&mut buf, 0, 1.0);\n}\n";
    assert_eq!(ids(bad), vec!["kernel/unscoped-shared"]);
    let good = "\
fn k(ctx: &mut Ctx) {
    ctx.warp_begin(w);
    ctx.sh_write(&mut buf, 0, 1.0);
    ctx.warp_end();
}
";
    assert!(ids(good).is_empty());
}

#[test]
fn sync_under_divergence_catches_both_shapes() {
    let in_scope = "\
fn k(ctx: &mut Ctx) {
    ctx.warp_begin(w);
    ctx.sync_threads();
    ctx.warp_end();
}
";
    assert_eq!(ids(in_scope), vec!["kernel/sync-under-divergence"]);
    let lane_cond = "\
fn k(ctx: &mut Ctx) {
    if lane == 0 {
        ctx.sync_threads();
    }
}
";
    assert_eq!(ids(lane_cond), vec!["kernel/sync-under-divergence"]);
    let good = "\
fn k(ctx: &mut Ctx) {
    ctx.warp_begin(w);
    ctx.warp_end();
    ctx.sync_threads();
}
";
    assert!(ids(good).is_empty());
}

#[test]
fn raw_slice_index_fires_without_a_charge() {
    let bad =
        "fn k(&self) -> f64 {\n    self.fields.orig[0] as f64 - self.fields.dec[0] as f64\n}\n";
    assert_eq!(ids(bad), vec!["kernel/raw-slice-index"]);
    let good = "\
fn k(&self, ctx: &mut Ctx) -> f64 {
    ctx.g_read_raw(8);
    self.fields.orig[0] as f64 - self.fields.dec[0] as f64
}
";
    assert!(ids(good).is_empty());
}

#[test]
fn float_reduction_order_catches_each_shape() {
    let par = "fn k(xs: &[f32]) {\n    zc_par::par_map(xs.len(), |i| xs[i]);\n}\n";
    assert_eq!(ids(par), vec!["kernel/float-reduction-order"]);
    let f32_sum = "fn k(xs: &[f32]) -> f32 {\n    xs.iter().sum::<f32>()\n}\n";
    assert_eq!(ids(f32_sum), vec!["kernel/float-reduction-order"]);
    let rev = "\
fn k(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs.iter().rev() {
        acc += x;
    }
    acc
}
";
    assert_eq!(ids(rev), vec!["kernel/float-reduction-order"]);
    // A data-dependent chunk width is advisory, not gating.
    let chunks = "fn k(xs: &[f64], w: usize) {\n    for c in xs.chunks(w) {\n        consume(c);\n    }\n}\n";
    let diags = lint_source("snippet.rs", chunks);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert_eq!(error_count(&diags), 0);
    // The production shapes stay clean: literal chunks, f64 sums, forward
    // iteration.
    let good = "\
fn k(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for c in xs.chunks(64) {
        acc += c.iter().sum::<f64>();
    }
    acc
}
";
    assert!(ids(good).is_empty());
}

#[test]
fn comments_and_strings_never_trigger_lints() {
    let src = "\
fn k() {
    // calls t.as_slice() and self.fields.orig[0] in prose only
    let s = \"sh_write( .as_slice() par_iter\";
    consume(s);
}
";
    assert!(ids(src).is_empty());
}

#[test]
fn diagnostics_carry_file_and_line() {
    let src = "fn a() {}\n\nfn k(t: &T) {\n    let s = t.as_slice();\n    consume(s);\n}\n";
    let diags = lint_source("mem.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].location.file, "mem.rs");
    assert_eq!(diags[0].location.line, 4);
    assert_eq!(diags[0].severity, Severity::Error);
}
