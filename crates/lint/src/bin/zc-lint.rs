//! `zc-lint` — run the kernel-source lints from the command line.
//!
//! ```text
//! zc-lint --workspace-kernels     # lint crates/kernels/src (the CI gate)
//! zc-lint path/to/file.rs ...     # lint specific files
//! zc-lint --list                  # list the registered lints
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 on any error-severity
//! finding, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;
use zc_lint::{error_count, find_kernels_src, lint_file, render_table, Diagnostic, LINTS};

const USAGE: &str = "usage: zc-lint [--workspace-kernels | --list | <file.rs>...]
  --workspace-kernels   lint every source of crates/kernels/src (locates the
                        workspace from the current directory or the zc-lint
                        crate's own location)
  --list                list the registered lints and exit";

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(USAGE.to_string());
    }
    if args.iter().any(|a| a == "--list") {
        for l in LINTS {
            println!("{:30} {}", l.id, l.description);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let files: Vec<PathBuf> = if args.iter().any(|a| a == "--workspace-kernels") {
        let src = find_kernels_src()
            .ok_or_else(|| "crates/kernels/src not found from here".to_string())?;
        eprintln!("zc-lint: scanning {}", src.display());
        zc_lint::rs_sources(&src).map_err(|e| format!("{}: {e}", src.display()))?
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    if files.is_empty() {
        return Err("no source files to lint".to_string());
    }
    let mut diags: Vec<Diagnostic> = Vec::new();
    for f in &files {
        diags.extend(lint_file(f).map_err(|e| format!("{}: {e}", f.display()))?);
    }
    print!("{}", render_table(&diags));
    eprintln!(
        "zc-lint: {} file(s), {} lint(s), {} finding(s)",
        files.len(),
        LINTS.len(),
        diags.len()
    );
    Ok(if error_count(&diags) > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
