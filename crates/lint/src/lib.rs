//! zc-lint — static analysis for the cuZ-Checker workspace.
//!
//! Two consumers share this crate (DESIGN.md §6.10):
//!
//! 1. **The kernel lint framework** ([`lint_source`] / [`lint_dir`] and the
//!    `zc-lint` binary): a token-level walker over `crates/kernels/src`
//!    running the registered [`LINTS`] — uncharged global/shared access,
//!    shared-memory access outside a `warp_begin`/`warp_end` scope,
//!    sync-under-divergence shapes, non-exempt raw slice indexing, and
//!    order-sensitive float reductions. The static companion of
//!    zc-sancheck's runtime audits: it catches the same bug classes at
//!    review time, on paths no test happens to execute.
//! 2. **The plan verifier** (`zc_core::plan::verify`): reports through the
//!    same typed [`Diagnostic`] so `cuzc --verify`, campaign admission and
//!    CI render one diagnostic table for both halves.
//!
//! No external dependencies: the scanner is a hand-rolled line/token
//! walker (see `scan.rs` for why that is sufficient here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lints;
mod scan;

pub use lints::{
    find_kernels_src, lint_dir, lint_file, lint_source, rs_sources, Lint, CHARGE_APIS, LINTS,
};
pub use scan::{scan_source, CodeLine, FnBody, EXEMPT_MARKER, LEGACY_EXEMPT_MARKER};

use std::fmt;

/// How severe a finding is. Only [`Severity::Error`] gates (nonzero exit,
/// campaign admission rejection); warnings inform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory — reported but never gating.
    Warning,
    /// A contract violation — gates `--verify`, admission, and CI.
    Error,
}

impl Severity {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a finding anchors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Location {
    /// Source file (kernel lints) or plan element label (plan verifier).
    pub file: String,
    /// 1-based line number; 0 when the location is not a source line.
    pub line: usize,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}", self.file, self.line)
        } else {
            f.write_str(&self.file)
        }
    }
}

/// One typed finding — from a kernel lint or the plan verifier.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable lint id, `category/name` (e.g. `kernel/unscoped-shared`,
    /// `plan/cycle`).
    pub lint_id: &'static str,
    /// Whether the finding gates.
    pub severity: Severity,
    /// Anchor.
    pub location: Location,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] {}",
            self.severity, self.location, self.lint_id, self.message
        )
    }
}

/// Number of error-severity findings.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Render findings as the aligned diagnostic table `cuzc --verify` and the
/// `zc-lint` binary print. Empty input renders an explicit all-clear line
/// so a clean gate is visible in CI logs.
pub fn render_table(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "no diagnostics\n".to_string();
    }
    let sev_w = diags
        .iter()
        .map(|d| d.severity.label().len())
        .max()
        .unwrap_or(0);
    let id_w = diags.iter().map(|d| d.lint_id.len()).max().unwrap_or(0);
    let loc: Vec<String> = diags.iter().map(|d| d.location.to_string()).collect();
    let loc_w = loc.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut s = String::new();
    for (d, l) in diags.iter().zip(&loc) {
        s.push_str(&format!(
            "{:sev_w$}  {:id_w$}  {:loc_w$}  {}\n",
            d.severity.label(),
            d.lint_id,
            l,
            d.message
        ));
    }
    let errors = error_count(diags);
    s.push_str(&format!(
        "{} diagnostic(s): {} error(s), {} warning(s)\n",
        diags.len(),
        errors,
        diags.len() - errors
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_counts() {
        let diags = vec![
            Diagnostic {
                lint_id: "plan/cycle",
                severity: Severity::Error,
                location: Location {
                    file: "plan".into(),
                    line: 0,
                },
                message: "cycle".into(),
            },
            Diagnostic {
                lint_id: "kernel/float-reduction-order",
                severity: Severity::Warning,
                location: Location {
                    file: "p1.rs".into(),
                    line: 12,
                },
                message: "chunk width".into(),
            },
        ];
        let t = render_table(&diags);
        assert!(t.contains("plan/cycle"));
        assert!(t.contains("p1.rs:12"));
        assert!(t.contains("2 diagnostic(s): 1 error(s), 1 warning(s)"));
        assert_eq!(error_count(&diags), 1);
        assert_eq!(render_table(&[]), "no diagnostics\n");
    }
}
