//! The token-level source scanner behind every lint.
//!
//! The scanner is deliberately not a full Rust parser: the kernel sources
//! it analyzes are rustfmt-normalized, `forbid(unsafe_code)` Rust with no
//! macros defining functions, so a line walker that strips comments and
//! string/char literals, counts brace depth, and tracks the simulator's
//! `warp_begin`/`warp_end` scope calls recovers everything the lints need
//! — function extents, per-line warp-scope depth, divergent-branch depth —
//! without an external parser dependency. Self-check tests in the kernels
//! crate fail loudly if the scanner ever stops seeing the known functions.

/// One analyzable line of a function body.
#[derive(Clone, Debug)]
pub struct CodeLine {
    /// 1-based source line number.
    pub line: usize,
    /// The line's code with comments and string/char literals blanked.
    pub code: String,
    /// Warp-scope depth (`warp_begin` minus `warp_end`) at line start.
    pub warp_depth: i32,
    /// Whether the line sits inside a lane/warp-conditional branch.
    pub divergent: bool,
    /// Lint ids a trailing `// zc-lint: exempt(...)` comment waives here.
    pub line_exempt: Vec<String>,
}

/// One function body extracted from a source file, with the exemption
/// markers of the comment/attribute block directly above it.
#[derive(Clone, Debug)]
pub struct FnBody {
    /// Source file label (as passed to the scanner).
    pub file: String,
    /// 1-based line of the `fn` header.
    pub line: usize,
    /// Function name.
    pub name: String,
    /// The body's analyzable lines (header included).
    pub lines: Vec<CodeLine>,
    /// A legacy `// charging-lint: exempt` marker above the function —
    /// waives the charging lints, exactly as the pre-zc-lint scanner did.
    pub exempt_legacy: bool,
    /// Lint ids waived by `// zc-lint: exempt(<id>, ...)` markers above.
    pub exempt_ids: Vec<String>,
}

impl FnBody {
    /// The stripped body text, newline-joined.
    pub fn code(&self) -> String {
        let mut s = String::new();
        for l in &self.lines {
            s.push_str(&l.code);
            s.push('\n');
        }
        s
    }

    /// Does any line of the body contain `needle` (in code, not comments)?
    pub fn contains(&self, needle: &str) -> bool {
        self.lines.iter().any(|l| l.code.contains(needle))
    }

    /// Is a lint waived for this function (or for `line` specifically)?
    /// The legacy marker covers exactly the charging lints; the typed
    /// marker covers the ids it names.
    pub fn is_exempt(&self, lint_id: &str, legacy_covers: bool, line: usize) -> bool {
        if legacy_covers && self.exempt_legacy {
            return true;
        }
        if self.exempt_ids.iter().any(|id| id == lint_id) {
            return true;
        }
        self.lines
            .iter()
            .find(|l| l.line == line)
            .is_some_and(|l| l.line_exempt.iter().any(|id| id == lint_id))
    }
}

/// The legacy blanket marker (`// charging-lint: exempt`).
pub const LEGACY_EXEMPT_MARKER: &str = "charging-lint: exempt";

/// The typed marker prefix: `// zc-lint: exempt(<lint-id>, ...)`.
pub const EXEMPT_MARKER: &str = "zc-lint: exempt(";

/// Pull the lint ids out of every `zc-lint: exempt(...)` marker in a
/// comment, appending to `out`.
fn collect_exempt_ids(comment: &str, out: &mut Vec<String>) {
    let mut rest = comment;
    while let Some(p) = rest.find(EXEMPT_MARKER) {
        rest = &rest[p + EXEMPT_MARKER.len()..];
        let Some(close) = rest.find(')') else { break };
        for id in rest[..close].split(',') {
            let id = id.trim();
            if !id.is_empty() {
                out.push(id.to_string());
            }
        }
        rest = &rest[close..];
    }
}

/// Split one raw line into (stripped code, comment text). String and char
/// literal contents are blanked from the code so brace counting and
/// substring lints never match inside them; `//` starts the comment unless
/// it sits inside a string. `in_string` carries multi-line string state.
fn strip_line(raw: &str, in_string: &mut bool) -> (String, String) {
    let chars: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0;
    while i < chars.len() {
        if *in_string {
            match chars[i] {
                '\\' => i += 2,
                '"' => {
                    *in_string = false;
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        match chars[i] {
            '"' => {
                // Literal contents are dropped; an empty literal keeps the
                // expression shape (e.g. `f("")`) for the brace counter.
                code.push_str("\"\"");
                *in_string = true;
                i += 1;
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                comment = chars[i..].iter().collect();
                break;
            }
            '\'' => {
                // A char literal (`'x'`, `'\\''`, `'{'`) is blanked; a
                // lifetime (`'a`) passes through.
                if i + 2 < chars.len() && chars[i + 1] == '\\' {
                    let end = i + 3;
                    if end < chars.len() && chars[end] == '\'' {
                        code.push_str("' '");
                        i = end + 1;
                        continue;
                    }
                }
                if i + 2 < chars.len() && chars[i + 2] == '\'' {
                    code.push_str("' '");
                    i += 3;
                    continue;
                }
                code.push('\'');
                i += 1;
            }
            c => {
                code.push(c);
                i += 1;
            }
        }
    }
    (code, comment)
}

/// Whether a stripped line is a function definition header.
fn is_fn_header(code: &str) -> bool {
    let t = code
        .trim_start()
        .trim_start_matches("pub(crate) ")
        .trim_start_matches("pub(super) ")
        .trim_start_matches("pub ")
        .trim_start_matches("const ")
        .trim_start_matches("unsafe ");
    t.starts_with("fn ") && t.contains('(')
}

/// Function name from a header line.
fn fn_name(code: &str) -> String {
    code.split("fn ")
        .nth(1)
        .and_then(|r| r.split(['(', '<']).next())
        .unwrap_or("?")
        .trim()
        .to_string()
}

/// A lane/warp-conditional `if`: the branch body executes for a subset of
/// the warp, so a block-wide barrier inside it is the classic divergent
/// sync. Only the condition region (before the opening brace) is tested.
fn divergent_condition(code: &str) -> bool {
    let t = code.trim_start();
    for kw in ["if ", "} else if ", "else if "] {
        if let Some(rest) = t.strip_prefix(kw) {
            let cond = rest.split('{').next().unwrap_or(rest);
            return cond.contains("lane") || cond.contains("warp");
        }
    }
    false
}

/// Net brace / warp-scope deltas of one stripped line.
fn line_deltas(code: &str) -> (i32, i32) {
    let mut braces = 0i32;
    for c in code.chars() {
        match c {
            '{' => braces += 1,
            '}' => braces -= 1,
            _ => {}
        }
    }
    let warp =
        count_occurrences(code, "warp_begin(") as i32 - count_occurrences(code, "warp_end(") as i32;
    (braces, warp)
}

fn count_occurrences(hay: &str, needle: &str) -> usize {
    let mut n = 0;
    let mut rest = hay;
    while let Some(p) = rest.find(needle) {
        n += 1;
        rest = &rest[p + needle.len()..];
    }
    n
}

/// Scan one source file into function bodies. `file` is the label carried
/// into diagnostics. Functions inside `#[cfg(test)]` modules are skipped —
/// the lints police production kernel code, not test scaffolding.
pub fn scan_source(file: &str, src: &str) -> Vec<FnBody> {
    let raw_lines: Vec<&str> = src.lines().collect();
    // Pass 1: strip every line once, carrying string state across lines.
    let mut in_string = false;
    let stripped: Vec<(String, String)> = raw_lines
        .iter()
        .map(|l| strip_line(l, &mut in_string))
        .collect();

    let mut out = Vec::new();
    let mut depth = 0i32; // global brace depth
    let mut test_mod_depth: Option<i32> = None; // depth the test module opened at
    let mut pending_test_attr = false;
    let mut i = 0;
    while i < raw_lines.len() {
        let (code, comment) = &stripped[i];
        if let Some(d) = test_mod_depth {
            let (db, _) = line_deltas(code);
            depth += db;
            if depth <= d {
                test_mod_depth = None;
            }
            i += 1;
            continue;
        }
        if comment.contains("cfg(test)") || code.contains("#[cfg(test)]") {
            pending_test_attr = true;
            i += 1;
            continue;
        }
        if pending_test_attr {
            if code.trim_start().starts_with("mod ") {
                let (db, _) = line_deltas(code);
                test_mod_depth = Some(depth);
                depth += db;
                pending_test_attr = false;
                i += 1;
                continue;
            }
            if !code.trim().is_empty() || !comment.is_empty() {
                pending_test_attr = false;
            }
        }
        if !is_fn_header(code) {
            let (db, _) = line_deltas(code);
            depth += db;
            i += 1;
            continue;
        }

        // Exemption markers live in the comment/attribute block above.
        let mut exempt_legacy = false;
        let mut exempt_ids = Vec::new();
        let mut j = i;
        while j > 0 {
            let above_raw = raw_lines[j - 1].trim_start();
            if above_raw.starts_with("//") || above_raw.starts_with("#[") {
                let (_, above_comment) = &stripped[j - 1];
                exempt_legacy |= above_comment.contains(LEGACY_EXEMPT_MARKER)
                    || above_raw.contains(LEGACY_EXEMPT_MARKER);
                collect_exempt_ids(above_comment, &mut exempt_ids);
                j -= 1;
            } else {
                break;
            }
        }

        // Capture the body until brace depth returns to the fn's level.
        let fn_depth = depth;
        let start = i;
        let name = fn_name(code);
        let mut lines = Vec::new();
        let mut warp = 0i32;
        let mut divergent_stack: Vec<i32> = Vec::new();
        let mut seen_open = false;
        while i < raw_lines.len() {
            let (code, comment) = &stripped[i];
            let mut line_exempt = Vec::new();
            collect_exempt_ids(comment, &mut line_exempt);
            lines.push(CodeLine {
                line: i + 1,
                code: code.clone(),
                warp_depth: warp,
                divergent: !divergent_stack.is_empty(),
                line_exempt,
            });
            if divergent_condition(code) && code.contains('{') {
                divergent_stack.push(depth);
            }
            let (db, dw) = line_deltas(code);
            depth += db;
            warp += dw;
            while divergent_stack.last().is_some_and(|&d| depth <= d) {
                divergent_stack.pop();
            }
            if db > 0 || code.contains('{') {
                seen_open = true;
            }
            i += 1;
            if seen_open && depth <= fn_depth {
                break;
            }
            // Trait-method declarations end at `;` without a body.
            if !seen_open && code.contains(';') {
                break;
            }
        }
        out.push(FnBody {
            file: file.to_string(),
            line: start + 1,
            name,
            lines,
            exempt_legacy,
            exempt_ids,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_strings_and_char_literals() {
        let mut s = false;
        let (code, comment) = strip_line(
            r#"let x = "a { b"; match c { '{' => 1, _ => 2 } // }"#,
            &mut s,
        );
        assert!(!code.contains("a { b"));
        assert!(!code.contains("'{'"));
        assert_eq!(comment, "// }");
        assert!(!s);
        let (_, _) = strip_line(r#"let y = "open"#, &mut s);
        assert!(s, "unterminated string carries state");
    }

    #[test]
    fn extracts_fns_and_exemptions() {
        let src = "\
/// Docs.
// zc-lint: exempt(kernel/unscoped-shared)
fn helper(ctx: &mut Ctx) {
    ctx.sh_read(buf, i);
}

fn plain() {
    let s = \"fn not_a_fn()\";
}
";
        let fns = scan_source("t.rs", src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "helper");
        assert_eq!(fns[0].exempt_ids, vec!["kernel/unscoped-shared"]);
        assert!(fns[0].is_exempt("kernel/unscoped-shared", false, fns[0].line));
        assert_eq!(fns[1].name, "plain");
        assert!(!fns[1].contains("not_a_fn"));
    }

    #[test]
    fn tracks_warp_depth_and_divergence() {
        let src = "\
fn k(ctx: &mut Ctx) {
    ctx.warp_begin(w);
    ctx.sh_write(buf, 0, 1.0);
    ctx.warp_end();
    if lane == 0 {
        ctx.sync_threads();
    }
}
";
        let fns = scan_source("t.rs", src);
        let f = &fns[0];
        let at = |needle: &str| f.lines.iter().find(|l| l.code.contains(needle)).unwrap();
        assert_eq!(at("sh_write").warp_depth, 1);
        assert_eq!(at("warp_end").warp_depth, 1);
        assert_eq!(at("if lane").warp_depth, 0);
        assert!(at("sync_threads").divergent);
        assert!(!at("warp_begin").divergent);
    }

    #[test]
    fn skips_test_modules() {
        let src = "\
fn production() {}

#[cfg(test)]
mod tests {
    fn helper_in_tests() {}

    #[test]
    fn a_test() {}
}

fn also_production() {}
";
        let names: Vec<String> = scan_source("t.rs", src)
            .into_iter()
            .map(|f| f.name)
            .collect();
        assert_eq!(names, vec!["production", "also_production"]);
    }
}
