//! The kernel-source lints (DESIGN.md §6.10).
//!
//! Each lint polices one way a `zc-gpusim` kernel can silently break the
//! simulator's contracts: uncharged traffic skews every counter the cost
//! model prices, shared access outside a `warp_begin`/`warp_end` scope
//! defeats the sanitizer's race attribution, a barrier under divergence is
//! the classic CUDA deadlock, raw field indexing bypasses the charge APIs,
//! and order-sensitive float reductions break the golden tier's exact
//! `f64`-bit pins. Every finding carries a typed lint id; waive one with a
//! `// zc-lint: exempt(<id>)` marker (the legacy `// charging-lint:
//! exempt` blanket still covers the two charging lints).

use crate::scan::{scan_source, FnBody};
use crate::{Diagnostic, Location, Severity};
use std::path::{Path, PathBuf};

/// Substring calls that count as charging an access against the
/// simulator's counters (the same set the pre-zc-lint test used).
pub const CHARGE_APIS: [&str; 8] = [
    "charge_",
    "sh_read",
    "sh_write",
    "sh_mark_reads",
    "sh_mark_writes",
    "g_read",
    "g_write",
    "g_scatter",
];

/// The shared-memory access APIs that must sit inside a warp scope.
const SHARED_APIS: [&str; 4] = ["sh_read(", "sh_write(", "sh_mark_reads(", "sh_mark_writes("];

/// One registered lint.
pub struct Lint {
    /// Stable id, `category/name`.
    pub id: &'static str,
    /// One-line description for `zc-lint --list` and docs.
    pub description: &'static str,
    /// Whether the legacy `charging-lint: exempt` marker waives it.
    pub legacy_exempt: bool,
    check: fn(&Lint, &FnBody, &mut Vec<Diagnostic>),
}

impl Lint {
    fn emit(
        &self,
        f: &FnBody,
        line: usize,
        severity: Severity,
        message: String,
        out: &mut Vec<Diagnostic>,
    ) {
        if f.is_exempt(self.id, self.legacy_exempt, line) {
            return;
        }
        out.push(Diagnostic {
            lint_id: self.id,
            severity,
            location: Location {
                file: f.file.clone(),
                line,
            },
            message,
        });
    }
}

/// Does the function call any charge API?
fn charges(f: &FnBody) -> bool {
    CHARGE_APIS.iter().any(|api| f.contains(api))
}

/// `charging/uncharged-access` — a raw `as_slice`/`as_mut_slice` view in a
/// function that never charges. Migrated verbatim from the substring test
/// that used to live in `crates/kernels/tests/charging_lint.rs`.
fn uncharged_access(lint: &Lint, f: &FnBody, out: &mut Vec<Diagnostic>) {
    let Some(hit) = f
        .lines
        .iter()
        .find(|l| l.code.contains(".as_slice()") || l.code.contains(".as_mut_slice()"))
    else {
        return;
    };
    if charges(f) {
        return;
    }
    lint.emit(
        f,
        hit.line,
        Severity::Error,
        format!(
            "fn {} takes a raw as_slice/as_mut_slice view but never calls a charge API \
             (charge the traffic or mark the view exempt with a reason)",
            f.name
        ),
        out,
    );
}

/// `kernel/unscoped-shared` — a shared-memory access API called at
/// warp-scope depth zero: the sanitizer cannot attribute the access to a
/// warp actor, so its race tracking silently degrades.
fn unscoped_shared(lint: &Lint, f: &FnBody, out: &mut Vec<Diagnostic>) {
    for l in &f.lines {
        if l.warp_depth > 0 {
            continue;
        }
        if let Some(api) = SHARED_APIS.iter().find(|api| l.code.contains(*api)) {
            lint.emit(
                f,
                l.line,
                Severity::Error,
                format!(
                    "fn {}: {}...) outside a warp_begin/warp_end scope — the sanitizer \
                     cannot attribute the access to a warp actor",
                    f.name,
                    api.trim_end_matches('(')
                ),
                out,
            );
        }
    }
}

/// `kernel/sync-under-divergence` — `sync_threads` inside an open warp
/// scope or under a lane/warp-conditional branch: on hardware a barrier
/// only part of the block reaches deadlocks the kernel.
fn sync_under_divergence(lint: &Lint, f: &FnBody, out: &mut Vec<Diagnostic>) {
    for l in &f.lines {
        if !l.code.contains("sync_threads(") {
            continue;
        }
        if l.warp_depth > 0 {
            lint.emit(
                f,
                l.line,
                Severity::Error,
                format!(
                    "fn {}: sync_threads inside an open warp_begin scope — a barrier \
                     reached by one warp deadlocks the block",
                    f.name
                ),
                out,
            );
        } else if l.divergent {
            lint.emit(
                f,
                l.line,
                Severity::Error,
                format!(
                    "fn {}: sync_threads under a lane/warp-conditional branch — threads \
                     that skip the branch never reach the barrier",
                    f.name
                ),
                out,
            );
        }
    }
}

/// `kernel/raw-slice-index` — direct indexing of the field-pair storage
/// (`.orig[...]` / `.dec[...]`) in a function that never charges: the read
/// bypasses the counters entirely, the same bug class the sanitizer's
/// `UnchargedAccess` audit catches at runtime.
fn raw_slice_index(lint: &Lint, f: &FnBody, out: &mut Vec<Diagnostic>) {
    let Some(hit) = f
        .lines
        .iter()
        .find(|l| l.code.contains(".orig[") || l.code.contains(".dec["))
    else {
        return;
    };
    if charges(f) {
        return;
    }
    lint.emit(
        f,
        hit.line,
        Severity::Error,
        format!(
            "fn {} indexes the field-pair storage directly without charging the read \
             (use g_read*/charge_* alongside the access)",
            f.name
        ),
        out,
    );
}

/// `kernel/float-reduction-order` — accumulation shapes whose result
/// depends on iteration order or accumulator width: host parallel
/// iteration inside a kernel, reversed iteration feeding an accumulator,
/// `f32` sums, and data-dependent chunk widths. Any of these would break
/// the golden tier's exact `f64`-bit pins across executors.
fn float_reduction_order(lint: &Lint, f: &FnBody, out: &mut Vec<Diagnostic>) {
    let accumulates = f.contains("+=")
        || f.contains(".sum")
        || f.contains("absorb")
        || f.contains("combine")
        || f.contains(".fold(");
    for l in &f.lines {
        if l.code.contains("par_iter")
            || l.code.contains("par_chunks")
            || l.code.contains("zc_par::")
        {
            lint.emit(
                f,
                l.line,
                Severity::Error,
                format!(
                    "fn {}: host-parallel iteration inside a kernel — partial order \
                     varies with the worker count and breaks the golden f64-bit pins",
                    f.name
                ),
                out,
            );
        }
        if l.code.contains("sum::<f32>") {
            lint.emit(
                f,
                l.line,
                Severity::Error,
                format!(
                    "fn {}: f32 sum — accumulate in f64 (the metric pins are exact f64 bits)",
                    f.name
                ),
                out,
            );
        }
        if accumulates && l.code.contains(".rev()") {
            lint.emit(
                f,
                l.line,
                Severity::Error,
                format!(
                    "fn {}: reversed iteration feeding an accumulator — reduction order \
                     must match the reference scan exactly",
                    f.name
                ),
                out,
            );
        }
        if let Some(p) = l.code.find(".chunks(") {
            let arg = l.code[p + ".chunks(".len()..]
                .split(')')
                .next()
                .unwrap_or("")
                .trim();
            if !arg.is_empty() && !arg.chars().all(|c| c.is_ascii_digit() || c == '_') {
                lint.emit(
                    f,
                    l.line,
                    Severity::Warning,
                    format!(
                        "fn {}: data-dependent chunk width `{arg}` — a shape-dependent \
                         reduction tree changes the accumulation order between runs",
                        f.name
                    ),
                    out,
                );
            }
        }
    }
}

/// The registered lints, in reporting order.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "charging/uncharged-access",
        description: "raw as_slice/as_mut_slice view in a function that never charges",
        legacy_exempt: true,
        check: uncharged_access,
    },
    Lint {
        id: "kernel/unscoped-shared",
        description: "shared-memory access outside a warp_begin/warp_end scope",
        legacy_exempt: false,
        check: unscoped_shared,
    },
    Lint {
        id: "kernel/sync-under-divergence",
        description: "sync_threads under divergence (open warp scope or lane-conditional)",
        legacy_exempt: false,
        check: sync_under_divergence,
    },
    Lint {
        id: "kernel/raw-slice-index",
        description: "field-pair storage indexed without a charge API",
        legacy_exempt: true,
        check: raw_slice_index,
    },
    Lint {
        id: "kernel/float-reduction-order",
        description: "order-sensitive float reduction (parallel/reversed/f32/data-dependent)",
        legacy_exempt: false,
        check: float_reduction_order,
    },
];

/// Run every lint over one source text. `file` labels the diagnostics.
pub fn lint_source(file: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in scan_source(file, src) {
        for lint in LINTS {
            (lint.check)(lint, &f, &mut out);
        }
    }
    out
}

/// Lint one file on disk.
pub fn lint_file(path: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let src = std::fs::read_to_string(path)?;
    Ok(lint_source(&path.display().to_string(), &src))
}

/// Lint every `.rs` file under a directory (sorted, non-recursive — the
/// kernel crate keeps all sources at the top level of `src/`).
pub fn lint_dir(dir: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in rs_sources(dir)? {
        out.extend(lint_file(&path)?);
    }
    Ok(out)
}

/// Locate `crates/kernels/src`: walk up from the current directory, then
/// fall back to the compile-time sibling of this crate — so both the
/// `zc-lint` binary and `cuzc --verify` find the kernel sources from a
/// repo checkout or from anywhere inside the workspace.
pub fn find_kernels_src() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let cand = d.join("crates/kernels/src");
        if cand.is_dir() {
            return Some(cand);
        }
        dir = d.parent().map(PathBuf::from);
    }
    let sibling = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../kernels/src");
    sibling.is_dir().then_some(sibling)
}

/// The sorted `.rs` files directly under a directory.
pub fn rs_sources(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension().is_some_and(|x| x == "rs")).then_some(p)
        })
        .collect();
    files.sort();
    Ok(files)
}
