//! Human-readable launch summaries — what `nvprof`/Nsight would show for a
//! real kernel, assembled from the simulator's counters and cost breakdown.

use crate::cost::{Bound, ModeledTime};
use crate::counters::Counters;
use crate::occupancy::{Limiter, Occupancy};

/// Format a byte count with a binary-prefix unit.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Format seconds with an adaptive unit.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A profiler-style multi-line summary of one launch.
pub fn launch_summary(
    name: &str,
    grid_blocks: usize,
    counters: &Counters,
    occ: &Occupancy,
    modeled: &ModeledTime,
) -> String {
    let limiter = match occ.limiter {
        Limiter::Registers => "registers",
        Limiter::SharedMemory => "shared memory",
        Limiter::Threads => "threads",
        Limiter::Blocks => "block slots",
    };
    let bound = match modeled.bound {
        Bound::Memory => "global-memory bandwidth",
        Bound::Compute => "ALU throughput",
        Bound::SharedMemory => "shared-memory bandwidth",
    };
    format!(
        "kernel {name}\n\
         \x20 grid {grid_blocks} blocks · occupancy {}/SM ({:.0}% warps, limited by {limiter})\n\
         \x20 global: {} read, {} written{}\n\
         \x20 shared: {} accesses · shuffles {} · syncs {} · grid-syncs {}\n\
         \x20 alu: {} lane-ops + {} special · iters/thread {}\n\
         \x20 modeled {} (bound: {bound}; mem {}, compute {}, smem {}, overhead {}) · util {:.2}\n",
        occ.blocks_per_sm,
        occ.fraction * 100.0,
        fmt_bytes(counters.global_read_bytes),
        fmt_bytes(counters.global_write_bytes),
        if counters.global_scatter_bytes > 0 {
            format!(" (+{} scattered)", fmt_bytes(counters.global_scatter_bytes))
        } else {
            String::new()
        },
        counters.shared_accesses,
        counters.shuffles,
        counters.syncs,
        counters.grid_syncs,
        counters.lane_flops,
        counters.special_ops,
        counters.iters_per_thread,
        fmt_seconds(modeled.total_s),
        fmt_seconds(modeled.mem_s),
        fmt_seconds(modeled.compute_s),
        fmt_seconds(modeled.smem_s),
        fmt_seconds(modeled.overhead_s),
        modeled.utilization,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{gpu_time, GpuCalib};
    use crate::occupancy::{occupancy, KernelResources};
    use crate::spec::DeviceSpec;
    use crate::KernelClass;

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_seconds(2.5), "2.500 s");
        assert_eq!(fmt_seconds(2.5e-3), "2.500 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.500 µs");
        assert_eq!(fmt_seconds(5.0e-9), "5.0 ns");
    }

    #[test]
    fn summary_contains_the_essentials() {
        let dev = DeviceSpec::v100();
        let res = KernelResources {
            regs_per_thread: 56,
            smem_per_block: 1024,
            threads_per_block: 256,
        };
        let occ = occupancy(&dev, &res);
        let counters = Counters {
            global_read_bytes: 1 << 20,
            lane_flops: 1 << 22,
            shuffles: 500,
            launches: 1,
            grid_syncs: 1,
            iters_per_thread: 977,
            ..Default::default()
        };
        let t = gpu_time(
            &dev,
            &GpuCalib::default(),
            &counters,
            &occ,
            100,
            KernelClass::GlobalReduction,
        );
        let s = launch_summary("p1_fused", 100, &counters, &occ, &t);
        assert!(s.contains("p1_fused"));
        assert!(s.contains("grid 100 blocks"));
        assert!(s.contains("1.00 MiB read"));
        assert!(s.contains("registers"));
        assert!(s.contains("iters/thread 977"));
    }
}
