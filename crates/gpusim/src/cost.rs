//! The calibrated cost model: counters → modeled time.
//!
//! Structure: a roofline over the event counters (global-memory bytes,
//! lane-operations, shared-memory traffic), scaled by device-level
//! parallel utilization (wave quantization × latency-hiding knee from the
//! occupancy result), plus fixed per-launch and per-grid-sync overheads.
//!
//! All tunable constants live in [`GpuCalib`] / [`CpuCalib`]. They were
//! calibrated once against the paper's measured V100 / dual-Xeon-6148
//! throughputs (Fig. 11) so that the regenerated figures land in the
//! paper's bands; the *structure* (who wins and why) comes entirely from
//! the measured counters and occupancy, not from the calibration.

use crate::counters::Counters;
use crate::launch::KernelClass;
use crate::occupancy::Occupancy;
use crate::spec::{CpuSpec, DeviceSpec};

/// GPU cost-model calibration constants.
#[derive(Clone, Debug)]
pub struct GpuCalib {
    /// Achieved fraction of peak HBM bandwidth for streaming kernels.
    pub mem_eff: f64,
    /// Achieved fraction of peak FP32 throughput for ALU work.
    pub flop_eff: f64,
    /// Achieved fraction of peak shared-memory bandwidth.
    pub smem_eff: f64,
    /// Lane-op equivalents charged per special-function op (div/sqrt/...).
    pub special_lane_ops: f64,
    /// Lane-op equivalents charged per warp shuffle instruction.
    pub shuffle_lane_ops: f64,
    /// Lane-op equivalents charged per `__syncthreads`.
    pub sync_lane_ops: f64,
    /// Kernel launch overhead, seconds.
    pub launch_overhead_s: f64,
    /// Cooperative grid synchronization cost, seconds.
    pub grid_sync_s: f64,
    /// Active warps per SM needed for full latency hiding.
    pub warps_knee: f64,
    /// Achieved fraction of peak bandwidth for *scattered* global accesses
    /// (uncoalesced sectors; V100 ≈ 1/12 of peak).
    pub scatter_eff: f64,
    /// Per-pattern achieved-efficiency multipliers (relative to the global
    /// efficiencies above). Pattern 3's window reductions are dominated by
    /// dependent shuffle/shared chains with low ILP — the V100 achieves a
    /// small fraction of peak there (this is what Fig. 11(c)'s hundreds of
    /// MB/s, versus 11(a)'s hundreds of GB/s, reflects).
    pub class_eff: ClassEff,
}

/// Per-[`KernelClass`] efficiency multipliers.
#[derive(Clone, Copy, Debug)]
pub struct ClassEff {
    /// Pattern 1: streaming global reductions.
    pub global_reduction: f64,
    /// Pattern 2: shared-memory stencil cubes.
    pub stencil: f64,
    /// Pattern 3: sliding-window (SSIM) reductions.
    pub sliding_window: f64,
    /// Anything else.
    pub generic: f64,
}

impl ClassEff {
    fn get(&self, class: KernelClass) -> f64 {
        match class {
            KernelClass::GlobalReduction => self.global_reduction,
            KernelClass::Stencil => self.stencil,
            KernelClass::SlidingWindow => self.sliding_window,
            KernelClass::Generic => self.generic,
        }
    }
}

impl Default for GpuCalib {
    fn default() -> Self {
        GpuCalib {
            mem_eff: 0.80,
            flop_eff: 0.75,
            smem_eff: 0.50,
            special_lane_ops: 4.0,
            shuffle_lane_ops: 32.0,
            sync_lane_ops: 64.0,
            launch_overhead_s: 4.0e-6,
            grid_sync_s: 3.0e-6,
            warps_knee: 8.0,
            scatter_eff: 0.028,
            class_eff: ClassEff {
                global_reduction: 1.0,
                stencil: 0.40,
                sliding_window: 0.011,
                generic: 0.80,
            },
        }
    }
}

/// Breakdown of one launch's modeled time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModeledTime {
    /// Global-memory roofline term, seconds.
    pub mem_s: f64,
    /// ALU/shuffle/special roofline term, seconds.
    pub compute_s: f64,
    /// Shared-memory roofline term, seconds.
    pub smem_s: f64,
    /// Launch + cooperative-sync overheads, seconds.
    pub overhead_s: f64,
    /// Total modeled seconds.
    pub total_s: f64,
    /// Which roofline bound dominated.
    pub bound: Bound,
    /// Device utilization factor applied (wave quantization × hiding).
    pub utilization: f64,
}

/// The dominating roofline term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Global-memory bandwidth bound.
    Memory,
    /// ALU-throughput bound.
    Compute,
    /// Shared-memory bandwidth bound.
    SharedMemory,
}

/// Model the time of one GPU launch.
///
/// `grid_blocks` is the launch's grid size; `occ` the kernel's occupancy on
/// `dev`; `class` selects the pattern-efficiency multiplier.
pub fn gpu_time(
    dev: &DeviceSpec,
    calib: &GpuCalib,
    counters: &Counters,
    occ: &Occupancy,
    grid_blocks: usize,
    class: KernelClass,
) -> ModeledTime {
    // --- device utilization ------------------------------------------------
    // Load imbalance: blocks spread round-robin over SMs; the makespan is
    // set by the SM with ceil(B / #SM) blocks, so the tail of the last
    // round idles the rest. (Paper §IV-C observations (i) and (ii): grid
    // sizes tied to the z extent drive per-dataset differences.)
    let per_sm = grid_blocks.div_ceil(dev.sms as usize).max(1);
    let busy = grid_blocks as f64 / (per_sm * dev.sms as usize) as f64;
    // Latency hiding: below the knee, throughput degrades with *resident*
    // warps — an SM can only overlap as many blocks as it holds
    // concurrently (occupancy) or has been assigned, whichever is smaller
    // (observation (ii): one TB per SM cannot hide latency).
    let resident_blocks = (occ.blocks_per_sm.max(1) as usize).min(per_sm);
    let warps_per_block = occ.active_warps_per_sm as f64 / occ.blocks_per_sm.max(1) as f64;
    let effective_warps = resident_blocks as f64 * warps_per_block;
    let hiding = (effective_warps / calib.warps_knee).min(1.0);
    // Square-root softening: a partially-filled device still keeps its
    // memory system and SM front-ends busier than the raw occupancy ratio
    // suggests (warps interleave); calibrated against Fig. 12's spread.
    let util = (busy * hiding).sqrt().max(1e-3);

    let class_eff = calib.class_eff.get(class);

    // --- roofline terms ----------------------------------------------------
    let mem_bw = dev.hbm_bw_gbs * 1e9 * calib.mem_eff * class_eff * util;
    let scatter_bw = dev.hbm_bw_gbs * 1e9 * calib.scatter_eff * util;
    let mem_s =
        counters.global_bytes() as f64 / mem_bw + counters.global_scatter_bytes as f64 / scatter_bw;

    let lane_ops = counters.lane_flops as f64
        + counters.special_ops as f64 * calib.special_lane_ops
        + counters.shuffles as f64 * calib.shuffle_lane_ops
        + counters.ballots as f64 * calib.shuffle_lane_ops
        + counters.syncs as f64 * calib.sync_lane_ops;
    let compute_s = lane_ops / (dev.peak_flops() * calib.flop_eff * class_eff * util);

    let smem_s = counters.shared_accesses as f64 * 4.0
        / (dev.peak_smem_bw() * calib.smem_eff * class_eff * util);

    let overhead_s = counters.launches as f64 * calib.launch_overhead_s
        + counters.grid_syncs as f64 * calib.grid_sync_s;

    let (work_s, bound) = if mem_s >= compute_s && mem_s >= smem_s {
        (mem_s, Bound::Memory)
    } else if compute_s >= smem_s {
        (compute_s, Bound::Compute)
    } else {
        (smem_s, Bound::SharedMemory)
    };

    ModeledTime {
        mem_s,
        compute_s,
        smem_s,
        overhead_s,
        total_s: work_s + overhead_s,
        bound,
        utilization: util,
    }
}

/// CPU cost-model calibration constants (the ompZC side).
#[derive(Clone, Debug)]
pub struct CpuCalib {
    /// Achieved fraction of stream bandwidth.
    pub stream_eff: f64,
    /// Achieved instructions-per-cycle fraction of the scalar issue rate
    /// (Z-checker's per-element loops are scalar with branches).
    pub ipc_eff: f64,
    /// Lane-op equivalents per special op.
    pub special_ops_cost: f64,
    /// Per-pass (per metric kernel invocation) parallel-region overhead.
    pub pass_overhead_s: f64,
}

impl Default for CpuCalib {
    fn default() -> Self {
        CpuCalib {
            stream_eff: 0.80,
            ipc_eff: 0.38,
            special_ops_cost: 8.0,
            pass_overhead_s: 30.0e-6,
        }
    }
}

/// CPU-side analogue of [`gpu_time`]: models an OpenMP-style multithreaded
/// execution of the same counted work on a [`CpuSpec`].
#[derive(Clone, Debug)]
pub struct CpuModel {
    /// Host processor description.
    pub spec: CpuSpec,
    /// Calibration constants.
    pub calib: CpuCalib,
}

impl CpuModel {
    /// Model for the paper's evaluation host.
    pub fn xeon_6148() -> Self {
        CpuModel {
            spec: CpuSpec::xeon_6148(),
            calib: CpuCalib::default(),
        }
    }

    /// Modeled wall-time of the counted work. The `launches` counter is
    /// interpreted as the number of parallel passes (metric invocations).
    pub fn time(&self, counters: &Counters) -> ModeledTime {
        let mem_s = counters.global_bytes() as f64
            / (self.spec.stream_bw_gbs * 1e9 * self.calib.stream_eff);
        let ops =
            counters.lane_flops as f64 + counters.special_ops as f64 * self.calib.special_ops_cost;
        let compute_s = ops / (self.spec.scalar_ops_rate() * self.calib.ipc_eff);
        let overhead_s = counters.launches as f64 * self.calib.pass_overhead_s;
        let (work_s, bound) = if mem_s >= compute_s {
            (mem_s, Bound::Memory)
        } else {
            (compute_s, Bound::Compute)
        };
        ModeledTime {
            mem_s,
            compute_s,
            smem_s: 0.0,
            overhead_s,
            total_s: work_s + overhead_s,
            bound,
            utilization: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::{occupancy, KernelResources};

    fn full_occ() -> Occupancy {
        occupancy(
            &DeviceSpec::v100(),
            &KernelResources {
                regs_per_thread: 16,
                smem_per_block: 0,
                threads_per_block: 256,
            },
        )
    }

    #[test]
    fn streaming_kernel_is_memory_bound() {
        let dev = DeviceSpec::v100();
        let counters = Counters {
            global_read_bytes: 1 << 30,
            lane_flops: 1 << 28, // far below the byte count in time
            launches: 1,
            ..Default::default()
        };
        let t = gpu_time(
            &dev,
            &GpuCalib::default(),
            &counters,
            &full_occ(),
            10_000,
            KernelClass::GlobalReduction,
        );
        assert_eq!(t.bound, Bound::Memory);
        // ~1 GiB at ~720 GB/s effective → ~1.5 ms.
        assert!(t.total_s > 1.0e-3 && t.total_s < 3.0e-3, "{}", t.total_s);
    }

    #[test]
    fn more_traffic_means_more_time() {
        let dev = DeviceSpec::v100();
        let calib = GpuCalib::default();
        let occ = full_occ();
        let mk = |bytes: u64| Counters {
            global_read_bytes: bytes,
            launches: 1,
            ..Default::default()
        };
        let t1 = gpu_time(
            &dev,
            &calib,
            &mk(1 << 28),
            &occ,
            4096,
            KernelClass::GlobalReduction,
        );
        let t2 = gpu_time(
            &dev,
            &calib,
            &mk(1 << 31),
            &occ,
            4096,
            KernelClass::GlobalReduction,
        );
        assert!(t2.total_s > 7.0 * t1.total_s);
    }

    #[test]
    fn small_grids_waste_the_device() {
        let dev = DeviceSpec::v100();
        let calib = GpuCalib::default();
        let occ = full_occ();
        let counters = Counters {
            lane_flops: 1 << 32,
            launches: 1,
            ..Default::default()
        };
        let big = gpu_time(&dev, &calib, &counters, &occ, 100_000, KernelClass::Generic);
        let small = gpu_time(&dev, &calib, &counters, &occ, 40, KernelClass::Generic);
        // 40 blocks fill half the SMs; the softened utilization model
        // degrades throughput by ~sqrt(busy).
        assert!(
            small.total_s > 1.3 * big.total_s,
            "small grid should be slower"
        );
        assert!(small.utilization < big.utilization);
    }

    #[test]
    fn launch_overhead_accumulates() {
        let dev = DeviceSpec::v100();
        let calib = GpuCalib::default();
        let occ = full_occ();
        let mk = |launches: u64| Counters {
            launches,
            lane_flops: 1000,
            ..Default::default()
        };
        let one = gpu_time(&dev, &calib, &mk(1), &occ, 1000, KernelClass::Generic);
        let ten = gpu_time(&dev, &calib, &mk(10), &occ, 1000, KernelClass::Generic);
        assert!((ten.overhead_s - 10.0 * one.overhead_s).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_class_is_much_slower_per_op() {
        let dev = DeviceSpec::v100();
        let calib = GpuCalib::default();
        let occ = full_occ();
        let counters = Counters {
            lane_flops: 1 << 34,
            launches: 1,
            ..Default::default()
        };
        let p1 = gpu_time(
            &dev,
            &calib,
            &counters,
            &occ,
            50_000,
            KernelClass::GlobalReduction,
        );
        let p3 = gpu_time(
            &dev,
            &calib,
            &counters,
            &occ,
            50_000,
            KernelClass::SlidingWindow,
        );
        assert!(p3.compute_s > 10.0 * p1.compute_s);
    }

    #[test]
    fn cpu_model_scales_with_ops_and_passes() {
        let cpu = CpuModel::xeon_6148();
        let mk = |ops: u64, passes: u64| Counters {
            lane_flops: ops,
            global_read_bytes: ops / 4,
            launches: passes,
            ..Default::default()
        };
        let a = cpu.time(&mk(1 << 30, 1));
        let b = cpu.time(&mk(1 << 33, 1));
        assert!(b.total_s > 7.0 * a.total_s);
        // ~1G scalar ops at ~18 Gop/s → tens of ms.
        assert!(a.total_s > 0.02 && a.total_s < 0.2, "{}", a.total_s);
    }
}
