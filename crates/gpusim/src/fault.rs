//! Deterministic device-fault injection — the failure model of the
//! simulated fleet.
//!
//! The paper's fleet story (and the ROADMAP's production north star) needs
//! more than failure *bookkeeping*: real GPU fleets lose devices and links
//! routinely. A [`FaultPlan`] is a seeded, **fully deterministic**
//! description of what goes wrong on a fleet during one campaign:
//!
//! * **transient launch faults** — an attempt dies mid-flight (an ECC trip,
//!   an Xid launch error); the device was busy for a deterministic fraction
//!   of the attempt before the fault struck, then the work is lost;
//! * **hangs** — the attempt never completes; the modeled watchdog
//!   ([`crate::DeviceSpec::watchdog_timeout_s`], the TDR-style timer every
//!   real driver arms) trips after its timeout and the device is reclaimed;
//! * **link flaps** — the attempt completes, but its H2D/D2H legs ran over
//!   a degraded link and are re-priced by a deterministic factor
//!   ([`crate::EndToEnd::repriced_transfers`]);
//! * **permanent device death** — a device drops out of the fleet at a
//!   deterministic timeline instant and never returns; everything still
//!   assigned to it must be rescheduled onto the survivors.
//!
//! Every decision is a pure function of `(seed, device, attempt key)`
//! hashed through SplitMix64, so the same seed replays the same faults
//! bit-for-bit — the property the chaos test tier pins. All knobs are
//! integers (per-mille rates, microsecond timeouts) so the plan stays
//! `Copy + Eq` and can ride inside fleet specs without poisoning their
//! equality.

/// SplitMix64 finalizer — one stateless mixing step (same constants as the
/// public-domain splitmix64.c and `zc-data`'s generator; carried here so
/// the simulator stays dependency-free).
#[inline]
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a `(seed, channel, device, key)` tuple into 64 uniform bits. Each
/// fault channel draws from its own stream so e.g. raising the hang rate
/// never changes *which* attempts take transient faults.
#[inline]
fn draw(seed: u64, channel: u64, device: u32, key: u64) -> u64 {
    mix(mix(seed ^ channel.wrapping_mul(0xA076_1D64_78BD_642F)) ^ mix(key) ^ (device as u64) << 32)
}

/// Uniform fraction in `[0, 1)` from 53 hashed bits.
#[inline]
fn frac01(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const CH_TRANSIENT: u64 = 1;
const CH_HANG: u64 = 2;
const CH_FLAP: u64 = 3;
const CH_DEATH: u64 = 4;
const CH_DEATH_AT: u64 = 5;
const CH_ABORT_FRAC: u64 = 6;
const CH_FLAP_FACTOR: u64 = 7;

/// What the fault plan decided for one execution attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultDraw {
    /// The attempt runs clean.
    None,
    /// A transient launch fault kills the attempt after `abort_frac` of
    /// its nominal span; the partial work is lost but the device was busy
    /// (and reading field bytes) for that fraction.
    Transient {
        /// Fraction of the nominal attempt span executed before the fault.
        abort_frac: f64,
    },
    /// The attempt hangs; the device is reclaimed only when the modeled
    /// watchdog trips, and no work survives.
    Hang,
    /// The attempt completes, but its transfer legs ran over a flapping
    /// link and cost `factor`× their nominal time.
    LinkFlap {
        /// Multiplier applied to the H2D/D2H legs (`> 1`).
        factor: f64,
    },
}

/// A seeded, deterministic fleet fault model. `Copy + Eq` by construction
/// (integer rates and timeouts only): two fleets with the same plan are
/// the same fleet, and the same seed replays the same faults exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of every fault stream.
    pub seed: u64,
    /// Per-attempt transient launch-fault probability, in per-mille
    /// (50 = 5%).
    pub transient_permille: u32,
    /// Per-attempt hang probability (watchdog trip), in per-mille.
    pub hang_permille: u32,
    /// Per-attempt link-flap probability, in per-mille.
    pub flap_permille: u32,
    /// Per-device permanent-death probability, in per-mille; a doomed
    /// device dies at a deterministic fraction of the fault-free makespan.
    pub death_permille: u32,
    /// Explicitly doomed devices (bit *i* dooms device group *i*) — the
    /// test- and demo-friendly way to stage a specific degraded-mode
    /// scenario on top of (or instead of) the seeded `death_permille` draw.
    pub death_mask: u64,
}

impl FaultPlan {
    /// The standard chaos plan: transient launch faults only, at
    /// `rate_permille` per attempt (the CLI's `--chaos <seed>:<rate>`).
    pub fn chaos(seed: u64, rate_permille: u32) -> Self {
        FaultPlan {
            seed,
            transient_permille: rate_permille.min(1000),
            hang_permille: 0,
            flap_permille: 0,
            death_permille: 0,
            death_mask: 0,
        }
    }

    /// Add seeded hang faults (watchdog trips) at `rate_permille`.
    pub fn with_hangs(mut self, rate_permille: u32) -> Self {
        self.hang_permille = rate_permille.min(1000);
        self
    }

    /// Add seeded link flaps at `rate_permille`.
    pub fn with_flaps(mut self, rate_permille: u32) -> Self {
        self.flap_permille = rate_permille.min(1000);
        self
    }

    /// Add seeded permanent device deaths at `rate_permille` per device.
    pub fn with_deaths(mut self, rate_permille: u32) -> Self {
        self.death_permille = rate_permille.min(1000);
        self
    }

    /// Doom a specific device group (in addition to any seeded deaths).
    pub fn with_dead_device(mut self, device: u32) -> Self {
        self.death_mask |= 1u64 << device.min(63);
        self
    }

    /// True when the plan can never inject anything.
    pub fn is_null(&self) -> bool {
        self.transient_permille == 0
            && self.hang_permille == 0
            && self.flap_permille == 0
            && self.death_permille == 0
            && self.death_mask == 0
    }

    /// The fault (if any) striking one execution attempt on `device`.
    /// `key` must be unique per (job part, attempt) — the campaign's
    /// recovery engine derives it from the job id, part index and attempt
    /// ordinal — so retries re-roll instead of replaying the same fault.
    ///
    /// Hangs outrank transients outrank flaps: a hung launch never gets
    /// far enough to observe a slow link.
    pub fn attempt_fault(&self, device: u32, key: u64) -> FaultDraw {
        if self.hang_permille > 0
            && draw(self.seed, CH_HANG, device, key) % 1000 < self.hang_permille as u64
        {
            return FaultDraw::Hang;
        }
        if self.transient_permille > 0
            && draw(self.seed, CH_TRANSIENT, device, key) % 1000 < self.transient_permille as u64
        {
            return FaultDraw::Transient {
                abort_frac: frac01(draw(self.seed, CH_ABORT_FRAC, device, key)),
            };
        }
        if self.flap_permille > 0
            && draw(self.seed, CH_FLAP, device, key) % 1000 < self.flap_permille as u64
        {
            // Flapped legs cost 1.5–4× their healthy price.
            let f = frac01(draw(self.seed, CH_FLAP_FACTOR, device, key));
            return FaultDraw::LinkFlap {
                factor: 1.5 + 2.5 * f,
            };
        }
        FaultDraw::None
    }

    /// When (as a fraction of the fault-free campaign makespan) `device`
    /// permanently dies, or `None` if it survives the whole campaign.
    /// Seeded deaths strike at a deterministic per-`(seed, device)` instant
    /// inside the campaign; masked devices are dead on arrival (fraction
    /// `0.0`) — the way to stage a degraded-mode scenario that does not
    /// depend on how far the clocks happen to run.
    pub fn death_frac(&self, device: u32) -> Option<f64> {
        if device < 64 && self.death_mask & (1u64 << device) != 0 {
            return Some(0.0);
        }
        (self.death_permille > 0
            && draw(self.seed, CH_DEATH, device, 0) % 1000 < self.death_permille as u64)
            .then(|| frac01(draw(self.seed, CH_DEATH_AT, device, 0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let p = FaultPlan::chaos(42, 50).with_hangs(10).with_flaps(20);
        for device in 0..8 {
            for key in 0..64 {
                assert_eq!(
                    p.attempt_fault(device, key),
                    p.attempt_fault(device, key),
                    "device {device} key {key}"
                );
            }
            assert_eq!(p.death_frac(device), p.death_frac(device));
        }
    }

    #[test]
    fn rates_bound_the_draws() {
        let none = FaultPlan::chaos(7, 0);
        assert!(none.is_null());
        for key in 0..256 {
            assert_eq!(none.attempt_fault(0, key), FaultDraw::None);
        }
        let all = FaultPlan::chaos(7, 1000);
        for key in 0..256 {
            assert!(matches!(
                all.attempt_fault(0, key),
                FaultDraw::Transient { .. }
            ));
        }
    }

    #[test]
    fn five_percent_rate_is_roughly_five_percent() {
        let p = FaultPlan::chaos(42, 50);
        let n = 20_000u64;
        let faults = (0..n)
            .filter(|&k| p.attempt_fault((k % 8) as u32, k) != FaultDraw::None)
            .count();
        let rate = faults as f64 / n as f64;
        assert!((0.035..0.065).contains(&rate), "measured rate {rate}");
    }

    #[test]
    fn channels_are_independent() {
        // Turning hangs on must not change which attempts take transients
        // (each channel hashes its own stream).
        let base = FaultPlan::chaos(99, 100);
        let with_hangs = base.with_hangs(100);
        for key in 0..512 {
            let b = base.attempt_fault(3, key);
            let h = with_hangs.attempt_fault(3, key);
            if h != FaultDraw::Hang {
                assert_eq!(b, h, "key {key}");
            }
        }
    }

    #[test]
    fn death_mask_dooms_exactly_the_masked_devices() {
        let p = FaultPlan::chaos(1, 0)
            .with_dead_device(2)
            .with_dead_device(5);
        for device in 0..8 {
            let dead = p.death_frac(device).is_some();
            assert_eq!(dead, device == 2 || device == 5, "device {device}");
            // Masked devices are dead on arrival.
            if let Some(f) = p.death_frac(device) {
                assert_eq!(f, 0.0);
            }
        }
        // Seeded deaths strike at an instant strictly inside the campaign.
        let p = FaultPlan::chaos(1, 0).with_deaths(1000);
        for device in 0..8 {
            let f = p.death_frac(device).expect("1000‰ dooms every device");
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn flap_factors_and_abort_fracs_stay_in_range() {
        let p = FaultPlan::chaos(3, 400).with_flaps(600);
        for key in 0..2048 {
            match p.attempt_fault(1, key) {
                FaultDraw::Transient { abort_frac } => {
                    assert!((0.0..1.0).contains(&abort_frac))
                }
                FaultDraw::LinkFlap { factor } => assert!((1.5..4.0).contains(&factor)),
                _ => {}
            }
        }
    }
}
