//! Modeled CUDA streams, copy engines and event timelines.
//!
//! The paper's evaluation (§V) measures *kernel* time, but notes that in an
//! end-to-end assessment the CPU↔GPU transfer legs dominate unless they are
//! overlapped with compute — the standard stream-pipelining trick (cuSZ
//! does the same for compression). This module models that dimension:
//!
//! * a [`HostLink`] prices an H2D/D2H leg (latency + bytes / bandwidth),
//!   using the same PCIe/NVLink constants as [`crate::MultiGpuModel`];
//! * a [`Timeline`] schedules *events* onto streams and engines. A V100 has
//!   one compute engine and two DMA copy engines (one per direction), so
//!   events on the same [`Engine`] serialize, events in the same stream
//!   serialize (CUDA stream FIFO order), and explicit dependencies order
//!   events across streams (CUDA events). Everything else overlaps.
//!
//! The modeled end-to-end time is then the **makespan** of the scheduled
//! timeline instead of the naive serialized sum:
//!
//! ```text
//! start(e) = max( end(prev event in stream(e)),
//!                 free(engine(e)),
//!                 max over d in deps(e) of end(d) )
//! end(e)   = start(e) + duration(e)
//! overlapped_s = max over e of end(e)      // makespan
//! serialized_s = sum over e of duration(e) // copy → compute → copy-back
//! ```
//!
//! Scheduling is greedy in submission order, which is deterministic and
//! mirrors how a host program actually enqueues work.

use std::collections::BTreeMap;

/// A modeled host↔device interconnect for transfer legs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostLink {
    /// Link bandwidth in GB/s.
    pub bw_gbs: f64,
    /// Per-transfer latency in seconds (driver + DMA setup).
    pub latency_s: f64,
}

impl HostLink {
    /// PCIe3 x16-class link (same constants as [`crate::MultiGpuModel::pcie`]).
    pub fn pcie() -> Self {
        HostLink {
            bw_gbs: 12.0,
            latency_s: 20.0e-6,
        }
    }

    /// NVLink2-class link (same constants as [`crate::MultiGpuModel::nvlink`]).
    pub fn nvlink() -> Self {
        HostLink {
            bw_gbs: 25.0,
            latency_s: 10.0e-6,
        }
    }

    /// Modeled seconds to move `bytes` over this link in one leg.
    pub fn transfer_s(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.bw_gbs * 1e9)
    }

    /// The same link while its PHY is flapping: bandwidth divided by
    /// `factor` (legs cost `factor`× as long; latency is unchanged — flap
    /// retraining throttles the data rate, it does not add per-message
    /// setup). Used by the fault layer to re-price transfer legs.
    pub fn degraded(self, factor: f64) -> HostLink {
        HostLink {
            bw_gbs: self.bw_gbs / factor.max(1.0),
            latency_s: self.latency_s,
        }
    }
}

/// The hardware engine an event occupies. Events on the same engine
/// serialize; engines run concurrently (the V100's compute/copy overlap).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Engine {
    /// Host-to-device DMA copy engine.
    H2D,
    /// The compute (kernel execution) engine.
    Compute,
    /// Device-to-host DMA copy engine.
    D2H,
}

/// Handle to a scheduled event, usable as a dependency for later events.
pub type EventId = usize;

/// One scheduled leg of work on the timeline.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Stream the event was enqueued on (CUDA stream FIFO semantics).
    pub stream: usize,
    /// Engine the event occupies.
    pub engine: Engine,
    /// Modeled duration in seconds.
    pub duration_s: f64,
    /// Scheduled start time.
    pub start_s: f64,
    /// Scheduled end time.
    pub end_s: f64,
}

/// A deterministic greedy list-scheduler over streams and engines.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<Event>,
    stream_cursor: BTreeMap<usize, f64>,
    engine_cursor: BTreeMap<Engine, f64>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Enqueue an event on `stream`/`engine` that must start after every
    /// event in `deps` has ended. Returns its [`EventId`].
    pub fn push(
        &mut self,
        stream: usize,
        engine: Engine,
        duration_s: f64,
        deps: &[EventId],
    ) -> EventId {
        let mut start = self
            .stream_cursor
            .get(&stream)
            .copied()
            .unwrap_or(0.0)
            .max(self.engine_cursor.get(&engine).copied().unwrap_or(0.0));
        for &d in deps {
            start = start.max(self.events[d].end_s);
        }
        let end = start + duration_s;
        self.stream_cursor.insert(stream, end);
        self.engine_cursor.insert(engine, end);
        self.events.push(Event {
            stream,
            engine,
            duration_s,
            start_s: start,
            end_s: end,
        });
        self.events.len() - 1
    }

    /// All scheduled events, in submission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The overlapped end-to-end time: the latest event end.
    pub fn makespan_s(&self) -> f64 {
        self.events.iter().map(|e| e.end_s).fold(0.0, f64::max)
    }

    /// The serialized time: what the same legs would cost run one after
    /// another (the naive copy → compute → copy-back sum).
    pub fn serialized_s(&self) -> f64 {
        self.events.iter().map(|e| e.duration_s).sum()
    }

    /// Total busy seconds of one engine.
    pub fn engine_busy_s(&self, engine: Engine) -> f64 {
        self.events
            .iter()
            .filter(|e| e.engine == engine)
            .map(|e| e.duration_s)
            .sum()
    }
}

/// Modeled end-to-end assessment time: transfer legs plus compute, both as
/// the overlapped stream makespan and as the serialized sum.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EndToEnd {
    /// Total host-to-device transfer seconds (both fields).
    pub h2d_s: f64,
    /// Total device-to-host result read-back seconds.
    pub d2h_s: f64,
    /// Total modeled kernel compute seconds.
    pub compute_s: f64,
    /// The naive serialized sum: `h2d_s + compute_s + d2h_s`.
    pub serialized_s: f64,
    /// The overlapped stream makespan (always `<= serialized_s`).
    pub overlapped_s: f64,
}

impl EndToEnd {
    /// Fraction of the serialized time hidden by overlap, in `[0, 1)`.
    pub fn saving(&self) -> f64 {
        if self.serialized_s <= 0.0 {
            0.0
        } else {
            1.0 - self.overlapped_s / self.serialized_s
        }
    }

    /// This timeline re-priced as if every transfer leg ran over a link
    /// flapping by `factor` (see [`HostLink::degraded`]): the H2D/D2H legs
    /// cost `factor`× their healthy time, and the *extra* transfer seconds
    /// are charged serially onto the makespan — a flapping link retrains
    /// unpredictably, so the scheduler cannot plan overlap around the
    /// slowdown. Compute time is untouched. `factor <= 1` is the identity.
    pub fn repriced_transfers(&self, factor: f64) -> EndToEnd {
        let f = factor.max(1.0);
        let extra = (f - 1.0) * (self.h2d_s + self.d2h_s);
        EndToEnd {
            h2d_s: self.h2d_s * f,
            d2h_s: self.d2h_s * f,
            compute_s: self.compute_s,
            serialized_s: self.serialized_s + extra,
            overlapped_s: self.overlapped_s + extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_constants_match_the_multi_gpu_model() {
        let m = crate::MultiGpuModel::pcie(2);
        let l = HostLink::pcie();
        assert_eq!(l.bw_gbs, m.link_bw_gbs);
        assert_eq!(l.latency_s, m.link_latency_s);
        let m = crate::MultiGpuModel::nvlink(2);
        let l = HostLink::nvlink();
        assert_eq!(l.bw_gbs, m.link_bw_gbs);
        assert_eq!(l.latency_s, m.link_latency_s);
    }

    #[test]
    fn transfer_time_is_latency_plus_bandwidth() {
        let l = HostLink::pcie();
        let t = l.transfer_s(12_000_000_000);
        assert!((t - (1.0 + 20.0e-6)).abs() < 1e-12, "{t}");
        assert!(l.transfer_s(0) == l.latency_s);
    }

    #[test]
    fn same_stream_and_same_engine_serialize() {
        let mut tl = Timeline::new();
        let a = tl.push(0, Engine::Compute, 1.0, &[]);
        let b = tl.push(0, Engine::Compute, 2.0, &[]);
        assert_eq!(tl.events()[a].start_s, 0.0);
        assert_eq!(tl.events()[b].start_s, 1.0);
        // Different stream, same engine: still serialized by the engine.
        let c = tl.push(1, Engine::Compute, 1.0, &[]);
        assert_eq!(tl.events()[c].start_s, 3.0);
        assert_eq!(tl.makespan_s(), 4.0);
        assert_eq!(tl.serialized_s(), 4.0);
    }

    #[test]
    fn different_engines_overlap_and_deps_order_across_streams() {
        let mut tl = Timeline::new();
        // Two H2D chunks back-to-back; compute chunk i depends on copy i.
        let h0 = tl.push(0, Engine::H2D, 1.0, &[]);
        let h1 = tl.push(0, Engine::H2D, 1.0, &[]);
        let c0 = tl.push(1, Engine::Compute, 3.0, &[h0]);
        let c1 = tl.push(1, Engine::Compute, 3.0, &[h1]);
        let d = tl.push(1, Engine::D2H, 0.5, &[c1]);
        assert_eq!(tl.events()[c0].start_s, 1.0); // waits for copy 0 only
        assert_eq!(tl.events()[h1].start_s, 1.0); // overlaps compute 0
        assert_eq!(tl.events()[c1].start_s, 4.0); // compute engine busy
        assert_eq!(tl.events()[d].start_s, 7.0);
        assert_eq!(tl.makespan_s(), 7.5);
        // Strictly better than the serialized sum 8.5.
        assert!(tl.makespan_s() < tl.serialized_s());
        assert_eq!(tl.engine_busy_s(Engine::Compute), 6.0);
    }

    #[test]
    fn degraded_link_scales_bandwidth_only() {
        let l = HostLink::nvlink();
        let d = l.degraded(2.0);
        assert_eq!(d.latency_s, l.latency_s);
        assert_eq!(d.bw_gbs, l.bw_gbs / 2.0);
        // factor <= 1 never *improves* the link.
        assert_eq!(l.degraded(0.5).bw_gbs, l.bw_gbs);
    }

    #[test]
    fn repriced_transfers_charges_the_extra_serially() {
        let e = EndToEnd {
            h2d_s: 1.0,
            d2h_s: 0.5,
            compute_s: 2.0,
            serialized_s: 3.5,
            overlapped_s: 2.8,
        };
        let r = e.repriced_transfers(2.0);
        assert_eq!(r.h2d_s, 2.0);
        assert_eq!(r.d2h_s, 1.0);
        assert_eq!(r.compute_s, 2.0);
        assert_eq!(r.serialized_s, 3.5 + 1.5);
        assert_eq!(r.overlapped_s, 2.8 + 1.5);
        // Identity at factor 1 (and below).
        assert_eq!(e.repriced_transfers(1.0), e);
        assert_eq!(e.repriced_transfers(0.3), e);
    }

    #[test]
    fn end_to_end_saving_bounds() {
        let e = EndToEnd {
            h2d_s: 1.0,
            d2h_s: 0.5,
            compute_s: 2.0,
            serialized_s: 3.5,
            overlapped_s: 2.8,
        };
        assert!((e.saving() - (1.0 - 2.8 / 3.5)).abs() < 1e-12);
        assert_eq!(EndToEnd::default().saving(), 0.0);
    }
}
