//! # zc-gpusim
//!
//! A deterministic, functionally-exact **GPU execution simulator** — the
//! substitute substrate for the CUDA/V100 environment the cuZ-Checker paper
//! runs on (see DESIGN.md §2 for the substitution argument).
//!
//! The simulator has two halves:
//!
//! 1. **Functional execution** ([`GpuSim::launch`]): kernels are Rust types
//!    implementing [`BlockKernel`] in *warp-synchronous* style — they
//!    manipulate whole 32-lane [`Lanes`] vectors with CUDA-faithful
//!    `shfl_down`/`shfl_up`/`shfl_xor`/`ballot` semantics, block-level
//!    [`SharedBuf`] shared memory with `sync_threads` barriers, and a
//!    cooperative-grid finalize phase (the `cg::sync(grid)` of the paper's
//!    Algorithm 1). Blocks execute in parallel on scoped threads; results are
//!    deterministic because inter-block communication only happens at the
//!    phase boundary, exactly as in a real cooperative kernel.
//!
//! 2. **Instrumented cost model** ([`cost`]): every primitive charges
//!    [`Counters`] (global-memory bytes, shared-memory accesses, lane-ops,
//!    shuffles, syncs, per-thread iteration depth). A calibrated roofline
//!    over those counters — plus the standard CUDA occupancy calculation
//!    ([`occupancy()`]) — converts counts into modeled kernel time on a
//!    V100-class [`DeviceSpec`]. A matching CPU model ([`cost::CpuModel`])
//!    converts the same counter kind collected from CPU executors into
//!    modeled Xeon-6148 time, which is how the paper's ompZC baseline rows
//!    are regenerated.
//!
//! The claims the paper makes (fusion saves global traffic, the FIFO buffer
//! reads each slice once, occupancy explains per-dataset speedup variance)
//! are claims about these *counts*, which the simulator measures exactly
//! while computing bit-identical metric values.
//!
//! A third, optional half is the [`sanitizer`]: a compute-sanitizer-style
//! checked execution mode ([`GpuSim::launch_checked`], or `ZC_SANITIZE=1`
//! for every launch) that shadows each instrumented access and reports
//! races, uninitialized shared reads, out-of-bounds indices, divergent
//! barriers and counter-charging bugs as structured diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod cost;
mod counters;
pub mod fault;
mod lanes;
mod launch;
mod multi;
mod occupancy;
pub mod sanitizer;
mod spec;
pub mod stream;
pub mod trace;

pub use block::{BlockCtx, SharedBuf};
pub use counters::Counters;
pub use fault::{FaultDraw, FaultPlan};
pub use lanes::{Lanes, WARP};
pub use launch::{BlockKernel, GpuSim, KernelClass, LaunchResult, TileCharge};
pub use multi::{MultiGpuModel, MultiGpuTime};
pub use occupancy::{occupancy, KernelResources, Limiter, Occupancy};
pub use sanitizer::{Diag, Hazard, SanitizeReport};
pub use spec::{CpuSpec, DeviceSpec};
pub use stream::{EndToEnd, Engine, HostLink, Timeline};
pub use trace::{fmt_bytes, fmt_seconds, launch_summary};
