//! `zc-sancheck` — a compute-sanitizer-style checked execution mode for the
//! simulated GPU kernels.
//!
//! When a launch runs sanitized (explicitly via
//! [`GpuSim::launch_checked`](crate::GpuSim::launch_checked), or implicitly
//! for every launch once [`set_enabled`]`(true)` / `ZC_SANITIZE=1` is in
//! effect), each [`BlockCtx`](crate::BlockCtx) carries a shadow state that
//! mirrors every instrumented access and reports structured diagnostics
//! instead of silent wrongness. Five detector families run, mapping onto the
//! tools of NVIDIA's `compute-sanitizer`:
//!
//! * **racecheck** — write/write and read/write accesses to the same shared
//!   word by *different simulated warps* within one barrier epoch
//!   (`sync_threads` advances the epoch). Kernels attribute accesses to a
//!   warp with [`BlockCtx::warp_begin`](crate::BlockCtx::warp_begin) /
//!   [`BlockCtx::warp_end`](crate::BlockCtx::warp_end); accesses outside a
//!   warp scope are block-uniform (e.g. histogram atomics) and never race.
//! * **initcheck** — shared reads of words never written, which the
//!   simulator's `vec![T::default()]` backing store would silently zero.
//! * **memcheck** — out-of-bounds shared/global indices become diagnostics
//!   naming kernel/block/buffer/index instead of raw slice panics, and the
//!   `shared_alloc` footprint is checked against the kernel's declared
//!   SMem/TB (the figure the Table II occupancy path consumes).
//! * **synccheck** — `sync_threads` issued inside a warp scope (a divergent
//!   barrier) and unbalanced `warp_begin`/`warp_end` pairs.
//! * **charging audit** — every `charge_*`/access API also feeds a shadow
//!   [`Counters`] tally; at block end the tally must be `==` to the charged
//!   counters, turning the DESIGN.md §6.1.1 counter-equivalence invariant
//!   into a runtime check that catches direct `ctx.counters` pokes and
//!   uncharged `SharedBuf::as_slice` bulk views.
//!
//! Sanitized execution is **observation-only**: values returned, counters
//! charged and modeled time are bit-identical to an unsanitized launch (see
//! the property tests in `crates/kernels/tests/sanitize.rs`).

use crate::counters::Counters;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on detailed diagnostics retained per block; further hazards
/// are counted but not materialized (mirrors compute-sanitizer's error cap).
const MAX_DIAGS_PER_BLOCK: usize = 16;

/// Upper bound on hazardous reports retained by the global sink.
const MAX_SINK_REPORTS: usize = 64;

/// Actor id used for accesses outside any `warp_begin`/`warp_end` scope:
/// block-uniform work that by construction cannot race.
const BLOCK_UNIFORM: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Hazard taxonomy
// ---------------------------------------------------------------------------

/// The class of a detected hazard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Hazard {
    /// Two different warps wrote the same shared word in one barrier epoch.
    RaceWriteWrite,
    /// One warp read and another wrote the same shared word in one epoch.
    RaceReadWrite,
    /// A shared word was read before any write (the `Default` zero leaks).
    UninitRead,
    /// Shared-memory index past the end of its buffer.
    OobShared,
    /// Global-memory index past the end of the slice.
    OobGlobal,
    /// `shared_alloc` footprint exceeded the kernel's declared SMem/TB.
    SmemOverflow,
    /// `sync_threads` issued inside a warp scope — a divergent barrier.
    DivergentSync,
    /// `warp_begin` without matching `warp_end` (or vice versa).
    UnbalancedWarpScope,
    /// Raw `as_slice`/`as_mut_slice` views taken without a matching charge.
    UnchargedAccess,
    /// Charged counters differ from the shadow tally re-derived from the
    /// access log (a direct `ctx.counters` poke or a miscounted batch).
    ChargeMismatch,
}

impl Hazard {
    /// The compute-sanitizer tool family this hazard belongs to.
    pub fn tool(self) -> &'static str {
        match self {
            Hazard::RaceWriteWrite | Hazard::RaceReadWrite => "racecheck",
            Hazard::UninitRead => "initcheck",
            Hazard::OobShared | Hazard::OobGlobal | Hazard::SmemOverflow => "memcheck",
            Hazard::DivergentSync | Hazard::UnbalancedWarpScope => "synccheck",
            Hazard::UnchargedAccess | Hazard::ChargeMismatch => "chargecheck",
        }
    }

    /// Stable short name (used in reports and test assertions).
    pub fn name(self) -> &'static str {
        match self {
            Hazard::RaceWriteWrite => "race-write-write",
            Hazard::RaceReadWrite => "race-read-write",
            Hazard::UninitRead => "uninit-read",
            Hazard::OobShared => "oob-shared",
            Hazard::OobGlobal => "oob-global",
            Hazard::SmemOverflow => "smem-overflow",
            Hazard::DivergentSync => "divergent-sync",
            Hazard::UnbalancedWarpScope => "unbalanced-warp-scope",
            Hazard::UnchargedAccess => "uncharged-access",
            Hazard::ChargeMismatch => "charge-mismatch",
        }
    }
}

/// One structured diagnostic: what happened, and exactly where.
#[derive(Clone, Debug)]
pub struct Diag {
    /// Hazard class.
    pub hazard: Hazard,
    /// Block index, or `None` for the grid-level finalize phase.
    pub block: Option<usize>,
    /// Warp the offending access was attributed to (if any).
    pub warp: Option<u32>,
    /// Barrier epoch at detection time.
    pub epoch: u32,
    /// Shared-buffer id within the block (allocation order), if relevant.
    pub buf: Option<usize>,
    /// Element index within the buffer/slice, if relevant.
    pub index: Option<usize>,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.hazard.tool(), self.hazard.name())?;
        match self.block {
            Some(b) => write!(f, " block {b}")?,
            None => write!(f, " grid-phase")?,
        }
        if let Some(w) = self.warp {
            write!(f, " warp {w}")?;
        }
        write!(f, " epoch {}", self.epoch)?;
        if let Some(b) = self.buf {
            write!(f, " buf #{b}")?;
        }
        if let Some(i) = self.index {
            write!(f, " word {i}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The outcome of one sanitized launch.
#[derive(Clone, Debug, Default)]
pub struct SanitizeReport {
    /// Kernel name (from [`BlockKernel::name`](crate::BlockKernel::name)).
    pub kernel: String,
    /// Grid size of the launch.
    pub grid_blocks: usize,
    /// Materialized diagnostics (capped per block; see `suppressed`).
    pub diags: Vec<Diag>,
    /// Hazards detected beyond the per-block diagnostic cap.
    pub suppressed: u64,
}

impl SanitizeReport {
    /// Whether the launch was hazard-free.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty() && self.suppressed == 0
    }

    /// Total hazards (materialized + suppressed).
    pub fn hazards(&self) -> u64 {
        self.diags.len() as u64 + self.suppressed
    }

    /// Number of diagnostics of a given class.
    pub fn count(&self, hazard: Hazard) -> usize {
        self.diags.iter().filter(|d| d.hazard == hazard).count()
    }

    /// Whether any diagnostic of the given class was recorded.
    pub fn has(&self, hazard: Hazard) -> bool {
        self.count(hazard) > 0
    }

    /// compute-sanitizer-style multi-line rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "========= ZC SANITIZER: kernel `{}` grid {}\n",
            self.kernel, self.grid_blocks
        );
        if self.is_clean() {
            s.push_str("========= no hazards\n");
            return s;
        }
        for d in &self.diags {
            s.push_str(&format!("========= {d}\n"));
        }
        s.push_str(&format!(
            "========= {} hazard(s){}\n",
            self.hazards(),
            if self.suppressed > 0 {
                format!(" ({} suppressed past the per-block cap)", self.suppressed)
            } else {
                String::new()
            }
        ));
        s
    }
}

// ---------------------------------------------------------------------------
// Per-block shadow state
// ---------------------------------------------------------------------------

/// Shadow word: last writer/reader as `(actor, epoch)` plus an init bit.
#[derive(Clone, Copy, Default)]
struct Word {
    init: bool,
    last_write: Option<(u32, u32)>,
    last_read: Option<(u32, u32)>,
}

/// Shadow image of one [`SharedBuf`](crate::SharedBuf).
struct ShadowBuf {
    words: Vec<Word>,
    /// Raw `as_slice`/`as_mut_slice` views taken on this buffer, bumped from
    /// the buffer itself (shared via `Arc` so clones count too).
    raw_views: Arc<AtomicU64>,
}

/// Shadow state carried by a sanitized [`BlockCtx`](crate::BlockCtx).
///
/// Crate-internal: kernels never see this type — they interact with it only
/// through the `BlockCtx` access APIs.
#[derive(Default)]
pub(crate) struct SanState {
    block: Option<usize>,
    declared_smem: u32,
    epoch: u32,
    active_warp: Option<u32>,
    bufs: Vec<ShadowBuf>,
    /// Shadow tally mirroring every charge; compared `==` against the charged
    /// counters at block end.
    pub(crate) tally: Counters,
    diags: Vec<Diag>,
    suppressed: u64,
}

impl fmt::Debug for SanState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SanState")
            .field("block", &self.block)
            .field("epoch", &self.epoch)
            .field("bufs", &self.bufs.len())
            .field("diags", &self.diags.len())
            .finish()
    }
}

impl SanState {
    pub(crate) fn new(block: Option<usize>, declared_smem: u32) -> Self {
        SanState {
            block,
            declared_smem,
            ..Default::default()
        }
    }

    fn actor(&self) -> u32 {
        self.active_warp.unwrap_or(BLOCK_UNIFORM)
    }

    fn diag(&mut self, hazard: Hazard, buf: Option<usize>, index: Option<usize>, detail: String) {
        if self.diags.len() >= MAX_DIAGS_PER_BLOCK {
            self.suppressed += 1;
            return;
        }
        self.diags.push(Diag {
            hazard,
            block: self.block,
            warp: self.active_warp,
            epoch: self.epoch,
            buf,
            index,
            detail,
        });
    }

    // ---- warp scope / barriers ----------------------------------------

    pub(crate) fn warp_begin(&mut self, w: u32) {
        if self.active_warp.is_some() {
            self.diag(
                Hazard::UnbalancedWarpScope,
                None,
                None,
                format!(
                    "warp_begin({w}) while warp {} scope still open",
                    self.actor()
                ),
            );
        }
        self.active_warp = Some(w);
    }

    pub(crate) fn warp_end(&mut self) {
        if self.active_warp.is_none() {
            self.diag(
                Hazard::UnbalancedWarpScope,
                None,
                None,
                "warp_end() without matching warp_begin".to_string(),
            );
        }
        self.active_warp = None;
    }

    pub(crate) fn on_sync(&mut self) {
        if let Some(w) = self.active_warp {
            self.diag(
                Hazard::DivergentSync,
                None,
                None,
                format!("sync_threads() inside warp {w} scope — divergent barrier"),
            );
        }
        self.epoch += 1;
    }

    // ---- shared-memory shadowing --------------------------------------

    /// Register a new shared buffer; returns its id and the raw-view counter
    /// the buffer itself will bump.
    pub(crate) fn alloc_buf(
        &mut self,
        len: usize,
        total_shared_bytes: usize,
    ) -> (usize, Arc<AtomicU64>) {
        let id = self.bufs.len();
        if total_shared_bytes > self.declared_smem as usize {
            self.diag(
                Hazard::SmemOverflow,
                Some(id),
                None,
                format!(
                    "shared_alloc brings footprint to {total_shared_bytes} B, declared {} B/block",
                    self.declared_smem
                ),
            );
        }
        let raw_views = Arc::new(AtomicU64::new(0));
        self.bufs.push(ShadowBuf {
            words: vec![Word::default(); len],
            raw_views: Arc::clone(&raw_views),
        });
        (id, raw_views)
    }

    /// Whether buffer `id` is shadow-tracked by *this* block's state (a
    /// buffer can legally cross contexts only in tests; shadowing is
    /// skipped when the id or length disagrees rather than misattributed).
    pub(crate) fn tracks(&self, id: usize, len: usize) -> bool {
        self.bufs.get(id).is_some_and(|b| b.words.len() == len)
    }

    /// Whether `i` is a diagnosable OOB on buffer `buf` (emits the diag).
    /// Returns `true` when the access must be dropped.
    pub(crate) fn check_shared_oob(&mut self, buf: usize, len: usize, i: usize) -> bool {
        if i < len {
            return false;
        }
        self.diag(
            Hazard::OobShared,
            Some(buf),
            Some(i),
            format!("shared index {i} out of bounds for buffer of {len} words"),
        );
        true
    }

    pub(crate) fn oob_global(&mut self, i: usize, len: usize, what: &str) {
        self.diag(
            Hazard::OobGlobal,
            None,
            Some(i),
            format!("global {what} index {i} out of bounds for slice of {len} elements"),
        );
    }

    pub(crate) fn on_shared_write(&mut self, buf: usize, i: usize) {
        let (actor, epoch) = (self.actor(), self.epoch);
        let w = &mut self.bufs[buf].words[i];
        let mut race: Option<(Hazard, u32)> = None;
        if let Some((wa, we)) = w.last_write {
            if we == epoch && wa != actor && wa != BLOCK_UNIFORM && actor != BLOCK_UNIFORM {
                race = Some((Hazard::RaceWriteWrite, wa));
            }
        }
        if race.is_none() {
            if let Some((ra, re)) = w.last_read {
                if re == epoch && ra != actor && ra != BLOCK_UNIFORM && actor != BLOCK_UNIFORM {
                    race = Some((Hazard::RaceReadWrite, ra));
                }
            }
        }
        w.init = true;
        w.last_write = Some((actor, epoch));
        if let Some((hz, other)) = race {
            self.diag(
                hz,
                Some(buf),
                Some(i),
                format!("warp {actor} wrote a word warp {other} touched in the same epoch"),
            );
        }
    }

    pub(crate) fn on_shared_read(&mut self, buf: usize, i: usize) {
        let (actor, epoch) = (self.actor(), self.epoch);
        let w = &mut self.bufs[buf].words[i];
        let mut hazard: Option<(Hazard, String)> = None;
        if !w.init {
            hazard = Some((
                Hazard::UninitRead,
                format!("read of never-written shared word (Default-zero leak) by warp scope {actor:#x}"),
            ));
        } else if let Some((wa, we)) = w.last_write {
            if we == epoch && wa != actor && wa != BLOCK_UNIFORM && actor != BLOCK_UNIFORM {
                hazard = Some((
                    Hazard::RaceReadWrite,
                    format!("warp {actor} read a word warp {wa} wrote in the same epoch"),
                ));
            }
        }
        w.last_read = Some((actor, epoch));
        if let Some((hz, detail)) = hazard {
            self.diag(hz, Some(buf), Some(i), detail);
        }
    }

    /// Shadow-mark a contiguous range of writes (the bulk form used by fast
    /// paths that keep values outside the buffer, e.g. the p3 FIFO).
    pub(crate) fn mark_writes(&mut self, buf: usize, start: usize, n: usize) {
        let len = self.bufs[buf].words.len();
        if start + n > len {
            self.diag(
                Hazard::OobShared,
                Some(buf),
                Some(start + n - 1),
                format!(
                    "bulk write range {start}..{} out of bounds for {len} words",
                    start + n
                ),
            );
            return;
        }
        for i in start..start + n {
            self.on_shared_write(buf, i);
        }
    }

    /// Shadow-mark a contiguous range of reads (bulk form of `on_shared_read`).
    pub(crate) fn mark_reads(&mut self, buf: usize, start: usize, n: usize) {
        let len = self.bufs[buf].words.len();
        if start + n > len {
            self.diag(
                Hazard::OobShared,
                Some(buf),
                Some(start + n - 1),
                format!(
                    "bulk read range {start}..{} out of bounds for {len} words",
                    start + n
                ),
            );
            return;
        }
        for i in start..start + n {
            self.on_shared_read(buf, i);
        }
    }

    // ---- end-of-block verdict -----------------------------------------

    /// Close out the block: scope balance, raw-view audit, charging audit.
    /// `charged` is the block's actually-charged counters.
    pub(crate) fn finish(mut self, charged: &Counters) -> (Vec<Diag>, u64) {
        if let Some(w) = self.active_warp {
            self.active_warp = None;
            self.diag(
                Hazard::UnbalancedWarpScope,
                None,
                None,
                format!("warp {w} scope still open at block end"),
            );
        }
        for b in 0..self.bufs.len() {
            let n = self.bufs[b].raw_views.load(Ordering::Relaxed);
            if n > 0 {
                self.diag(
                    Hazard::UnchargedAccess,
                    Some(b),
                    None,
                    format!(
                        "{n} raw as_slice/as_mut_slice view(s) taken — accesses through raw \
                         views bypass charging; use sh_read/sh_write, sh_mark_reads/sh_mark_writes \
                         or an explicit charge_shared"
                    ),
                );
            }
        }
        if self.tally != *charged {
            let detail = charge_mismatch_detail(&self.tally, charged);
            self.diag(Hazard::ChargeMismatch, None, None, detail);
        }
        (self.diags, self.suppressed)
    }
}

/// Field-by-field difference between the shadow tally and charged counters.
fn charge_mismatch_detail(tally: &Counters, charged: &Counters) -> String {
    let mut parts = Vec::new();
    macro_rules! diff {
        ($field:ident) => {
            if tally.$field != charged.$field {
                parts.push(format!(
                    concat!(stringify!($field), " shadow {} vs charged {}"),
                    tally.$field, charged.$field
                ));
            }
        };
    }
    diff!(global_read_bytes);
    diff!(global_write_bytes);
    diff!(global_scatter_bytes);
    diff!(shared_accesses);
    diff!(lane_flops);
    diff!(special_ops);
    diff!(shuffles);
    diff!(ballots);
    diff!(syncs);
    diff!(launches);
    diff!(grid_syncs);
    diff!(iters_per_thread);
    if parts.is_empty() {
        "counters differ (unknown field)".to_string()
    } else {
        format!(
            "counters were mutated outside the charge APIs: {}",
            parts.join(", ")
        )
    }
}

// ---------------------------------------------------------------------------
// Global enable + report sink
// ---------------------------------------------------------------------------

// 0 = follow ZC_SANITIZE env, 1 = forced off, 2 = forced on.
static FORCE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("ZC_SANITIZE")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                !v.is_empty() && v != "0" && v != "off" && v != "false"
            })
            .unwrap_or(false)
    })
}

/// Programmatic override of the `ZC_SANITIZE` environment switch (the
/// `cuzc --sanitize` path). `set_enabled(true)` makes every subsequent
/// [`GpuSim::launch`](crate::GpuSim::launch) run checked and publish its
/// report to the global sink.
pub fn set_enabled(on: bool) {
    FORCE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Drop any [`set_enabled`] override and fall back to the environment.
pub fn clear_override() {
    FORCE.store(0, Ordering::Relaxed);
}

/// Whether sanitized execution is globally enabled (override or env).
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_enabled(),
    }
}

struct Sink {
    launches: u64,
    hazards: u64,
    reports: Vec<SanitizeReport>,
    dropped: u64,
}

static SINK: Mutex<Sink> = Mutex::new(Sink {
    launches: 0,
    hazards: 0,
    reports: Vec::new(),
    dropped: 0,
});

/// Record a report in the global sink (done automatically by auto-sanitized
/// launches; hazard-free reports only bump the checked-launch count).
pub fn publish(report: &SanitizeReport) {
    let mut s = SINK.lock().unwrap();
    s.launches += 1;
    if !report.is_clean() {
        s.hazards += report.hazards();
        if s.reports.len() < MAX_SINK_REPORTS {
            s.reports.push(report.clone());
        } else {
            s.dropped += 1;
        }
    }
}

/// Everything the global sink accumulated since the last drain.
#[derive(Clone, Debug, Default)]
pub struct GlobalSummary {
    /// Launches that ran under the sanitizer.
    pub launches_checked: u64,
    /// Total hazards across those launches.
    pub hazards: u64,
    /// Hazardous reports (capped; see `dropped_reports`).
    pub reports: Vec<SanitizeReport>,
    /// Hazardous reports beyond the sink cap.
    pub dropped_reports: u64,
}

impl GlobalSummary {
    /// Whether every checked launch was hazard-free.
    pub fn is_clean(&self) -> bool {
        self.hazards == 0
    }
}

/// Drain the global sink, resetting it.
pub fn drain() -> GlobalSummary {
    let mut s = SINK.lock().unwrap();
    let out = GlobalSummary {
        launches_checked: s.launches,
        hazards: s.hazards,
        reports: std::mem::take(&mut s.reports),
        dropped_reports: s.dropped,
    };
    s.launches = 0;
    s.hazards = 0;
    s.dropped = 0;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_requires_two_distinct_warps_in_one_epoch() {
        let mut s = SanState::new(Some(0), 1 << 20);
        let (b, _) = s.alloc_buf(8, 32);
        s.warp_begin(0);
        s.on_shared_write(b, 3);
        s.warp_end();
        s.warp_begin(1);
        s.on_shared_write(b, 3); // WW race, same epoch
        s.warp_end();
        s.on_sync();
        s.warp_begin(2);
        s.on_shared_write(b, 3); // new epoch — no race
        s.warp_end();
        let (diags, suppressed) = s.finish(&Counters::default());
        assert_eq!(suppressed, 0);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].hazard, Hazard::RaceWriteWrite);
        assert_eq!(diags[0].index, Some(3));
    }

    #[test]
    fn block_uniform_accesses_never_race() {
        let mut s = SanState::new(Some(0), 1 << 20);
        let (b, _) = s.alloc_buf(4, 16);
        s.on_shared_write(b, 0); // no warp scope
        s.warp_begin(5);
        s.on_shared_read(b, 0); // reads block-uniform write — fine
        s.warp_end();
        let (diags, _) = s.finish(&Counters::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uninit_read_flagged_once_per_word_access() {
        let mut s = SanState::new(Some(1), 1 << 20);
        let (b, _) = s.alloc_buf(4, 16);
        s.on_shared_read(b, 2);
        let (diags, _) = s.finish(&Counters::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].hazard, Hazard::UninitRead);
        assert_eq!(diags[0].block, Some(1));
    }

    #[test]
    fn diag_cap_suppresses_overflow() {
        let mut s = SanState::new(Some(0), 1 << 20);
        let (b, _) = s.alloc_buf(64, 256);
        for i in 0..40 {
            s.on_shared_read(b, i); // 40 uninit reads
        }
        let (diags, suppressed) = s.finish(&Counters::default());
        assert_eq!(diags.len(), MAX_DIAGS_PER_BLOCK);
        assert_eq!(suppressed, 40 - MAX_DIAGS_PER_BLOCK as u64);
    }

    #[test]
    fn charge_mismatch_names_the_field() {
        let s = SanState::new(None, 0);
        let poked = Counters {
            shuffles: 7,
            ..Default::default()
        };
        let (diags, _) = s.finish(&poked);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].hazard, Hazard::ChargeMismatch);
        assert!(diags[0].detail.contains("shuffles"), "{}", diags[0].detail);
    }

    #[test]
    fn report_render_mentions_tool_and_position() {
        let report = SanitizeReport {
            kernel: "toy".into(),
            grid_blocks: 2,
            diags: vec![Diag {
                hazard: Hazard::RaceReadWrite,
                block: Some(1),
                warp: Some(3),
                epoch: 2,
                buf: Some(0),
                index: Some(17),
                detail: "x".into(),
            }],
            suppressed: 0,
        };
        let r = report.render();
        assert!(r.contains("racecheck"), "{r}");
        assert!(r.contains("block 1"), "{r}");
        assert!(r.contains("word 17"), "{r}");
        assert!(!report.is_clean());
        assert!(report.has(Hazard::RaceReadWrite));
    }
}
