//! The CUDA occupancy calculation (Table II's `TB(cncr.)/SM` column).

use crate::spec::DeviceSpec;

/// Per-launch resource declaration of a kernel — what a CUDA compiler would
/// report as register and shared-memory usage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelResources {
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block, bytes.
    pub smem_per_block: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl KernelResources {
    /// Registers per thread block (Table II's `Regs/TB`).
    pub fn regs_per_block(&self) -> u32 {
        self.regs_per_thread * self.threads_per_block
    }

    /// Warps per block (rounded up).
    pub fn warps_per_block(&self, warp: u32) -> u32 {
        self.threads_per_block.div_ceil(warp)
    }
}

/// What capped the concurrent block count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limiter {
    /// Register file exhausted first.
    Registers,
    /// Shared memory exhausted first.
    SharedMemory,
    /// Resident-thread limit hit first.
    Threads,
    /// Hardware max-blocks-per-SM limit hit first.
    Blocks,
}

/// Result of the occupancy calculation for one kernel on one device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Blocks that can be *concurrently* resident on one SM.
    pub blocks_per_sm: u32,
    /// Active warps per SM at that residency.
    pub active_warps_per_sm: u32,
    /// Fraction of the device's maximum resident warps.
    pub fraction: f64,
    /// Which resource was the binding constraint.
    pub limiter: Limiter,
}

/// Compute occupancy exactly as the CUDA occupancy calculator does:
/// the concurrent blocks per SM is the minimum over the register, shared
/// memory, thread and block-count constraints.
pub fn occupancy(dev: &DeviceSpec, res: &KernelResources) -> Occupancy {
    assert!(res.threads_per_block > 0, "empty thread block");
    // Unconstrained resources report "no limit" so they never win the
    // limiter attribution by coincidence.
    let by_regs = dev
        .regs_per_sm
        .checked_div(res.regs_per_block())
        .unwrap_or(u32::MAX);
    let by_smem = dev
        .smem_per_sm
        .checked_div(res.smem_per_block)
        .unwrap_or(u32::MAX);
    // Thread slots are allocated at warp granularity: a 673-thread block
    // occupies 22 warps, so the resident-thread limit is warps-based.
    let max_warps = dev.max_threads_per_sm / dev.warp_size;
    let by_threads = max_warps / res.warps_per_block(dev.warp_size);
    let by_blocks = dev.max_blocks_per_sm;

    let (mut blocks, mut limiter) = (by_regs, Limiter::Registers);
    for (cand, lim) in [
        (by_smem, Limiter::SharedMemory),
        (by_threads, Limiter::Threads),
        (by_blocks, Limiter::Blocks),
    ] {
        if cand < blocks {
            blocks = cand;
            limiter = lim;
        }
    }
    let warps = blocks * res.warps_per_block(dev.warp_size);
    let max_warps = dev.max_threads_per_sm / dev.warp_size;
    Occupancy {
        blocks_per_sm: blocks,
        active_warps_per_sm: warps,
        fraction: warps as f64 / max_warps as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pattern1_register_limit() {
        // Table II discussion: pattern-1 uses 14k regs/TB; 64k/14k → at most
        // 4 concurrent TBs per SM (paper §IV-C observation (i)).
        let dev = DeviceSpec::v100();
        let res = KernelResources {
            regs_per_thread: 56, // 56 × 256 threads ≈ 14.3k regs/TB
            smem_per_block: 410,
            threads_per_block: 256,
        };
        let occ = occupancy(&dev, &res);
        assert_eq!(occ.blocks_per_sm, 4);
        assert_eq!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn shared_memory_can_be_the_limit() {
        let dev = DeviceSpec::v100();
        let res = KernelResources {
            regs_per_thread: 16,
            smem_per_block: 40 * 1024,
            threads_per_block: 128,
        };
        let occ = occupancy(&dev, &res);
        assert_eq!(occ.blocks_per_sm, 2); // 96K / 40K
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn thread_limit_applies_to_big_blocks() {
        let dev = DeviceSpec::v100();
        let res = KernelResources {
            regs_per_thread: 8,
            smem_per_block: 0,
            threads_per_block: 1024,
        };
        let occ = occupancy(&dev, &res);
        assert_eq!(occ.blocks_per_sm, 2); // 2048 / 1024
        assert_eq!(occ.limiter, Limiter::Threads);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_limit_for_tiny_blocks() {
        let dev = DeviceSpec::v100();
        let res = KernelResources {
            regs_per_thread: 4,
            smem_per_block: 0,
            threads_per_block: 32,
        };
        let occ = occupancy(&dev, &res);
        assert_eq!(occ.blocks_per_sm, 32);
        assert_eq!(occ.limiter, Limiter::Blocks);
        assert!(occ.fraction < 0.6);
    }

    #[test]
    fn regs_per_block_matches_table_ii_units() {
        let res = KernelResources {
            regs_per_thread: 43,
            smem_per_block: 16 * 1024,
            threads_per_block: 256,
        };
        assert_eq!(res.regs_per_block(), 11_008); // ≈ the paper's "11k"
    }
}
