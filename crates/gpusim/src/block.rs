//! Per-block execution context: instrumented memory and warp primitives.

use crate::counters::Counters;
use crate::lanes::{ballot, Lanes, WARP};
use crate::sanitizer::{Diag, SanState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared memory buffer owned by one simulated thread block.
///
/// Allocate through [`BlockCtx::shared_alloc`] so the footprint is tracked
/// against the kernel's declared shared-memory usage.
#[derive(Clone, Debug)]
pub struct SharedBuf<T> {
    data: Vec<T>,
    /// Allocation order within the block (names the buffer in diagnostics).
    id: usize,
    /// Present only under the sanitizer: counts raw `as_slice`/`as_mut_slice`
    /// views so uncharged bulk access is diagnosable at block end.
    raw_views: Option<Arc<AtomicU64>>,
}

impl<T: Copy + Default> SharedBuf<T> {
    /// Length in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Direct view of the backing storage for bulk fast paths. Accesses
    /// through the slice are **not** charged — callers must account for
    /// them with [`BlockCtx::charge_shared`] so counter totals stay
    /// identical to the per-access [`BlockCtx::sh_read`]/[`BlockCtx::sh_write`]
    /// reference path. Under the sanitizer, prefer
    /// [`BlockCtx::sh_mark_reads`]/[`BlockCtx::sh_mark_writes`], which charge
    /// *and* shadow-mark the range; a raw view taken while sanitized is
    /// reported as an uncharged-access hazard.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if let Some(v) = &self.raw_views {
            v.fetch_add(1, Ordering::Relaxed);
        }
        &self.data
    }

    /// Mutable view (same charging contract as [`SharedBuf::as_slice`]).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if let Some(v) = &self.raw_views {
            v.fetch_add(1, Ordering::Relaxed);
        }
        &mut self.data
    }
}

/// Execution context of one thread block.
///
/// Every memory access and arithmetic operation a kernel performs goes
/// through these methods so that [`Counters`] mirror the real kernel's
/// event counts. The context is handed to [`crate::BlockKernel::run_block`]
/// once per block and merged by the launcher afterwards.
///
/// When constructed for a sanitized launch the context additionally carries
/// a [`crate::sanitizer`] shadow state: every access is mirrored into a
/// shadow tally and shared words are tracked per `(warp, epoch)` so data
/// races, uninitialized reads, out-of-bounds indices and charging bugs
/// surface as structured diagnostics. Sanitized execution is
/// observation-only — returned values and charged counters are identical.
#[derive(Debug, Default)]
pub struct BlockCtx {
    /// Counters charged by this block (merged across blocks at launch end).
    pub counters: Counters,
    shared_bytes: usize,
    allocs: usize,
    san: Option<Box<SanState>>,
}

impl BlockCtx {
    /// Fresh context (used by the launcher; kernels never construct one).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh context with sanitizer shadow state attached. `block` is `None`
    /// for the grid-level finalize phase; `declared_smem` is the kernel's
    /// declared SMem/TB, checked against the `shared_alloc` footprint.
    pub(crate) fn sanitized(block: Option<usize>, declared_smem: u32) -> Self {
        BlockCtx {
            san: Some(Box::new(SanState::new(block, declared_smem))),
            ..Default::default()
        }
    }

    /// Whether this context carries sanitizer shadow state.
    pub fn is_sanitized(&self) -> bool {
        self.san.is_some()
    }

    /// Detach the shadow state and produce its diagnostics (launcher-side).
    pub(crate) fn finish_sanitize(&mut self) -> Option<(Vec<Diag>, u64)> {
        self.san.take().map(|s| s.finish(&self.counters))
    }

    /// Shared-memory bytes allocated so far by this block.
    pub fn shared_bytes(&self) -> usize {
        self.shared_bytes
    }

    // ---- global memory -------------------------------------------------

    /// Read one `f32` from global memory. Under the sanitizer an
    /// out-of-bounds index becomes a memcheck diagnostic (returning `0.0`)
    /// instead of a raw slice panic.
    #[inline]
    pub fn g_read(&mut self, data: &[f32], i: usize) -> f32 {
        self.counters.global_read_bytes += 4;
        if let Some(s) = &mut self.san {
            s.tally.global_read_bytes += 4;
            if i >= data.len() {
                s.oob_global(i, data.len(), "read");
                return 0.0;
            }
        }
        data[i]
    }

    /// Read 32 lanes from global memory: lane `l` gets `data[base + l*stride]`;
    /// out-of-range lanes receive `fill`. One coalesced transaction when
    /// `stride == 1`.
    pub fn g_read_lanes(
        &mut self,
        data: &[f32],
        base: usize,
        stride: usize,
        fill: f32,
    ) -> Lanes<f32> {
        // Stride-1 fully-in-bounds reads — the interior of every row walk —
        // take a contiguous fast path: one slice copy the compiler can
        // vectorize and a single 128-byte counter add (the same total the
        // per-lane path below charges as 32 unit adds).
        if stride == 1 && base + WARP <= data.len() {
            let mut a = [0.0f32; WARP];
            a.copy_from_slice(&data[base..base + WARP]);
            self.counters.global_read_bytes += (4 * WARP) as u64;
            if let Some(s) = &mut self.san {
                s.tally.global_read_bytes += (4 * WARP) as u64;
            }
            return Lanes::from_array(a);
        }
        let mut n = 0u64;
        let l = Lanes::from_fn(|i| {
            let idx = base + i * stride;
            if idx < data.len() {
                n += 1;
                data[idx]
            } else {
                fill
            }
        });
        self.counters.global_read_bytes += 4 * n;
        if let Some(s) = &mut self.san {
            s.tally.global_read_bytes += 4 * n;
        }
        l
    }

    /// Write one `f32` to global memory. Under the sanitizer an
    /// out-of-bounds index becomes a memcheck diagnostic (dropping the
    /// write) instead of a raw slice panic.
    #[inline]
    pub fn g_write(&mut self, data: &mut [f32], i: usize, v: f32) {
        self.counters.global_write_bytes += 4;
        if let Some(s) = &mut self.san {
            s.tally.global_write_bytes += 4;
            if i >= data.len() {
                s.oob_global(i, data.len(), "write");
                return;
            }
        }
        data[i] = v;
    }

    /// Charge a raw global write of `bytes` (for f64 partials etc.).
    #[inline]
    pub fn g_write_raw(&mut self, bytes: u64) {
        self.counters.global_write_bytes += bytes;
        if let Some(s) = &mut self.san {
            s.tally.global_write_bytes += bytes;
        }
    }

    /// Charge a raw global read of `bytes`.
    #[inline]
    pub fn g_read_raw(&mut self, bytes: u64) {
        self.counters.global_read_bytes += bytes;
        if let Some(s) = &mut self.san {
            s.tally.global_read_bytes += bytes;
        }
    }

    /// Charge `bytes` of scattered (uncoalesced) global traffic.
    #[inline]
    pub fn g_scatter(&mut self, bytes: u64) {
        self.counters.global_scatter_bytes += bytes;
        if let Some(s) = &mut self.san {
            s.tally.global_scatter_bytes += bytes;
        }
    }

    // ---- batched charging ------------------------------------------------
    //
    // Bulk fast paths move data through plain slices and settle the
    // accounting in one add per row/tile instead of one per access. Each
    // helper must be fed the exact access count its per-access counterpart
    // would have charged, so totals stay identical between paths.

    /// Charge `n` coalesced 4-byte global lane reads in one accounting op
    /// (the batched form of [`BlockCtx::g_read`]).
    #[inline]
    pub fn charge_lane_reads(&mut self, n: u64) {
        self.counters.global_read_bytes += 4 * n;
        if let Some(s) = &mut self.san {
            s.tally.global_read_bytes += 4 * n;
        }
    }

    /// Charge `n` coalesced 4-byte global lane writes in one accounting op
    /// (the batched form of [`BlockCtx::g_write`]).
    #[inline]
    pub fn charge_lane_writes(&mut self, n: u64) {
        self.counters.global_write_bytes += 4 * n;
        if let Some(s) = &mut self.san {
            s.tally.global_write_bytes += 4 * n;
        }
    }

    /// Charge `n` shared-memory word accesses in one accounting op (the
    /// batched form of [`BlockCtx::sh_read`]/[`BlockCtx::sh_write`]).
    #[inline]
    pub fn charge_shared(&mut self, n: u64) {
        self.counters.shared_accesses += n;
        if let Some(s) = &mut self.san {
            s.tally.shared_accesses += n;
        }
    }

    /// Charge `n` warp shuffles in one accounting op (the batched form of
    /// the [`BlockCtx::shfl_down`] family).
    #[inline]
    pub fn charge_shuffles(&mut self, n: u64) {
        self.counters.shuffles += n;
        if let Some(s) = &mut self.san {
            s.tally.shuffles += n;
        }
    }

    // ---- warp attribution ------------------------------------------------

    /// Open a warp scope: until [`BlockCtx::warp_end`], shared accesses are
    /// attributed to simulated warp `w` for race detection. No cost is
    /// charged — attribution is observation-only and a no-op unless the
    /// context is sanitized.
    #[inline]
    pub fn warp_begin(&mut self, w: usize) {
        if let Some(s) = &mut self.san {
            s.warp_begin(w as u32);
        }
    }

    /// Close the current warp scope (see [`BlockCtx::warp_begin`]).
    #[inline]
    pub fn warp_end(&mut self) {
        if let Some(s) = &mut self.san {
            s.warp_end();
        }
    }

    // ---- shared memory -------------------------------------------------

    /// Allocate a shared-memory buffer of `len` elements. Under the
    /// sanitizer this also registers a shadow image and checks the running
    /// footprint against the kernel's declared SMem/TB.
    pub fn shared_alloc<T: Copy + Default>(&mut self, len: usize) -> SharedBuf<T> {
        self.shared_bytes += len * std::mem::size_of::<T>();
        let id = self.allocs;
        self.allocs += 1;
        let raw_views = self
            .san
            .as_mut()
            .map(|s| s.alloc_buf(len, self.shared_bytes).1);
        SharedBuf {
            data: vec![T::default(); len],
            id,
            raw_views,
        }
    }

    /// Read an element of shared memory. Under the sanitizer the access is
    /// shadow-tracked (init + race state) and an out-of-bounds index becomes
    /// a diagnostic returning `T::default()` instead of a panic.
    #[inline]
    pub fn sh_read<T: Copy + Default>(&mut self, buf: &SharedBuf<T>, i: usize) -> T {
        self.counters.shared_accesses += 1;
        if let Some(s) = &mut self.san {
            s.tally.shared_accesses += 1;
            if s.check_shared_oob(buf.id, buf.data.len(), i) {
                return T::default();
            }
            if s.tracks(buf.id, buf.data.len()) {
                s.on_shared_read(buf.id, i);
            }
        }
        buf.data[i]
    }

    /// Write an element of shared memory (sanitizer contract as
    /// [`BlockCtx::sh_read`]; an out-of-bounds write is dropped with a
    /// diagnostic).
    #[inline]
    pub fn sh_write<T: Copy + Default>(&mut self, buf: &mut SharedBuf<T>, i: usize, v: T) {
        self.counters.shared_accesses += 1;
        if let Some(s) = &mut self.san {
            s.tally.shared_accesses += 1;
            if s.check_shared_oob(buf.id, buf.data.len(), i) {
                return;
            }
            if s.tracks(buf.id, buf.data.len()) {
                s.on_shared_write(buf.id, i);
            }
        }
        buf.data[i] = v;
    }

    /// Charge and shadow-mark `n` shared-word **writes** covering
    /// `buf[start..start + n]`, without moving any values. This is the
    /// sanitizer-aware form of [`BlockCtx::charge_shared`] for fast paths
    /// whose staging values live outside the buffer (e.g. the pattern-3
    /// FIFO, which the simulator keeps in a local array while the
    /// [`SharedBuf`] models the real kernel's footprint): counters charge
    /// exactly `n` accesses either way, and under the sanitizer the range
    /// participates in race/init tracking at the marked positions.
    #[inline]
    pub fn sh_mark_writes<T: Copy + Default>(
        &mut self,
        buf: &SharedBuf<T>,
        start: usize,
        n: usize,
    ) {
        self.counters.shared_accesses += n as u64;
        if let Some(s) = &mut self.san {
            s.tally.shared_accesses += n as u64;
            if s.tracks(buf.id, buf.data.len()) {
                s.mark_writes(buf.id, start, n);
            }
        }
    }

    /// Charge and shadow-mark `n` shared-word **reads** covering
    /// `buf[start..start + n]` (see [`BlockCtx::sh_mark_writes`]).
    #[inline]
    pub fn sh_mark_reads<T: Copy + Default>(&mut self, buf: &SharedBuf<T>, start: usize, n: usize) {
        self.counters.shared_accesses += n as u64;
        if let Some(s) = &mut self.san {
            s.tally.shared_accesses += n as u64;
            if s.tracks(buf.id, buf.data.len()) {
                s.mark_reads(buf.id, start, n);
            }
        }
    }

    // ---- warp primitives -------------------------------------------------

    /// `__shfl_down_sync` with cost accounting (one shuffle instruction).
    #[inline]
    pub fn shfl_down<T: Copy + Default>(
        &mut self,
        l: &Lanes<T>,
        mask: u32,
        delta: usize,
    ) -> Lanes<T> {
        self.counters.shuffles += 1;
        if let Some(s) = &mut self.san {
            s.tally.shuffles += 1;
        }
        l.shfl_down(mask, delta)
    }

    /// `__shfl_up_sync` with cost accounting.
    #[inline]
    pub fn shfl_up<T: Copy + Default>(
        &mut self,
        l: &Lanes<T>,
        mask: u32,
        delta: usize,
    ) -> Lanes<T> {
        self.counters.shuffles += 1;
        if let Some(s) = &mut self.san {
            s.tally.shuffles += 1;
        }
        l.shfl_up(mask, delta)
    }

    /// `__shfl_xor_sync` with cost accounting.
    #[inline]
    pub fn shfl_xor<T: Copy + Default>(
        &mut self,
        l: &Lanes<T>,
        mask: u32,
        lane_mask: usize,
    ) -> Lanes<T> {
        self.counters.shuffles += 1;
        if let Some(s) = &mut self.san {
            s.tally.shuffles += 1;
        }
        l.shfl_xor(mask, lane_mask)
    }

    /// `__ballot_sync` with cost accounting.
    #[inline]
    pub fn ballot(&mut self, mask: u32, pred: impl FnMut(usize) -> bool) -> u32 {
        self.counters.ballots += 1;
        if let Some(s) = &mut self.san {
            s.tally.ballots += 1;
        }
        ballot(mask, pred)
    }

    /// `__syncthreads()` — a block barrier. (Blocks are simulated
    /// warp-synchronously so this is purely a cost event.) Under the
    /// sanitizer it advances the barrier epoch used by race detection, and
    /// a barrier issued inside a warp scope is flagged as divergent.
    #[inline]
    pub fn sync_threads(&mut self) {
        self.counters.syncs += 1;
        if let Some(s) = &mut self.san {
            s.tally.syncs += 1;
            s.on_sync();
        }
    }

    // ---- arithmetic charging ---------------------------------------------

    /// Charge `n` ALU lane-operations.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.counters.lane_flops += n;
        if let Some(s) = &mut self.san {
            s.tally.lane_flops += n;
        }
    }

    /// Charge one full-warp ALU operation (32 lane-ops).
    #[inline]
    pub fn warp_op(&mut self) {
        self.counters.lane_flops += WARP as u64;
        if let Some(s) = &mut self.san {
            s.tally.lane_flops += WARP as u64;
        }
    }

    /// Charge `n` special-function lane-operations (div/sqrt/log/exp).
    #[inline]
    pub fn special(&mut self, n: u64) {
        self.counters.special_ops += n;
        if let Some(s) = &mut self.san {
            s.tally.special_ops += n;
        }
    }

    /// Record `n` additional sequential iterations of the per-thread loop
    /// (Table II's Iters/thread).
    #[inline]
    pub fn note_iters(&mut self, n: u64) {
        self.counters.iters_per_thread += n;
        if let Some(s) = &mut self.san {
            s.tally.iters_per_thread += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitizer::Hazard;

    #[test]
    fn global_reads_charge_bytes() {
        let mut ctx = BlockCtx::new();
        let data = vec![1.0f32, 2.0, 3.0];
        assert_eq!(ctx.g_read(&data, 1), 2.0);
        assert_eq!(ctx.counters.global_read_bytes, 4);
        let lanes = ctx.g_read_lanes(&data, 0, 1, 0.0);
        assert_eq!(lanes.lane(0), 1.0);
        assert_eq!(lanes.lane(2), 3.0);
        assert_eq!(lanes.lane(3), 0.0); // fill
        assert_eq!(ctx.counters.global_read_bytes, 4 + 12); // only 3 valid lanes
    }

    #[test]
    fn lane_read_fast_path_matches_general_path() {
        // A stride-1 fully-in-bounds read takes the slice-copy fast path;
        // values and charged bytes must equal the per-lane general path.
        let data: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let mut fast = BlockCtx::new();
        let got = fast.g_read_lanes(&data, 17, 1, -1.0);
        let mut general = BlockCtx::new();
        let want = Lanes::from_fn(|i| {
            general.counters.global_read_bytes += 4;
            data[17 + i]
        });
        assert_eq!(got, want);
        assert_eq!(
            fast.counters.global_read_bytes,
            general.counters.global_read_bytes
        );
        // Strided and tail reads stay on the general path (charging only
        // in-bounds lanes).
        let tail = fast.g_read_lanes(&data, 90, 1, 0.0);
        assert_eq!(tail.lane(9), data[99]);
        assert_eq!(tail.lane(10), 0.0);
        assert_eq!(fast.counters.global_read_bytes, 128 + 40);
    }

    #[test]
    fn batched_charges_match_per_access_totals() {
        let mut a = BlockCtx::new();
        let mut b = BlockCtx::new();
        for _ in 0..37 {
            a.counters.global_read_bytes += 4;
            a.counters.shared_accesses += 1;
            a.counters.shuffles += 1;
            a.counters.global_write_bytes += 4;
        }
        b.charge_lane_reads(37);
        b.charge_shared(37);
        b.charge_shuffles(37);
        b.charge_lane_writes(37);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn shared_buf_slices_expose_storage_uncharged() {
        let mut ctx = BlockCtx::new();
        let mut buf: SharedBuf<f32> = ctx.shared_alloc(8);
        buf.as_mut_slice()[3] = 2.5;
        assert_eq!(buf.as_slice()[3], 2.5);
        assert_eq!(ctx.counters.shared_accesses, 0); // caller charges in bulk
        ctx.charge_shared(2);
        assert_eq!(ctx.counters.shared_accesses, 2);
    }

    #[test]
    fn shared_alloc_tracks_footprint() {
        let mut ctx = BlockCtx::new();
        let mut buf: SharedBuf<f32> = ctx.shared_alloc(1024);
        assert_eq!(ctx.shared_bytes(), 4096);
        ctx.sh_write(&mut buf, 7, 1.5);
        assert_eq!(ctx.sh_read(&buf, 7), 1.5);
        assert_eq!(ctx.counters.shared_accesses, 2);
    }

    #[test]
    fn warp_primitives_charge_counters() {
        let mut ctx = BlockCtx::new();
        let l = Lanes::<f32>::from_fn(|i| i as f32);
        let _ = ctx.shfl_down(&l, u32::MAX, 1);
        let _ = ctx.shfl_xor(&l, u32::MAX, 2);
        let _ = ctx.ballot(u32::MAX, |i| i < 4);
        ctx.sync_threads();
        assert_eq!(ctx.counters.shuffles, 2);
        assert_eq!(ctx.counters.ballots, 1);
        assert_eq!(ctx.counters.syncs, 1);
    }

    #[test]
    fn flop_charging() {
        let mut ctx = BlockCtx::new();
        ctx.flops(10);
        ctx.warp_op();
        ctx.special(3);
        ctx.note_iters(5);
        assert_eq!(ctx.counters.lane_flops, 42);
        assert_eq!(ctx.counters.special_ops, 3);
        assert_eq!(ctx.counters.iters_per_thread, 5);
    }

    // ---- sanitized-context behavior -----------------------------------

    #[test]
    fn sanitized_oob_is_diagnosed_not_panicking() {
        let mut ctx = BlockCtx::sanitized(Some(0), 1 << 20);
        let data = vec![1.0f32; 4];
        assert_eq!(ctx.g_read(&data, 99), 0.0);
        let mut buf: SharedBuf<f32> = ctx.shared_alloc(4);
        assert_eq!(ctx.sh_read(&buf, 8), 0.0);
        ctx.sh_write(&mut buf, 8, 7.0); // dropped
        let (diags, _) = ctx.finish_sanitize().unwrap();
        let classes: Vec<Hazard> = diags.iter().map(|d| d.hazard).collect();
        assert!(classes.contains(&Hazard::OobGlobal), "{diags:?}");
        assert_eq!(
            classes.iter().filter(|&&h| h == Hazard::OobShared).count(),
            2
        );
    }

    #[test]
    fn sanitized_raw_view_is_flagged_uncharged() {
        let mut ctx = BlockCtx::sanitized(Some(0), 1 << 20);
        let buf: SharedBuf<f32> = ctx.shared_alloc(8);
        let _ = buf.as_slice();
        let (diags, _) = ctx.finish_sanitize().unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].hazard, Hazard::UnchargedAccess);
        assert_eq!(diags[0].buf, Some(0));
    }

    #[test]
    fn sanitized_marks_charge_like_charge_shared() {
        let mut a = BlockCtx::sanitized(Some(0), 1 << 20);
        let buf: SharedBuf<f32> = a.shared_alloc(32);
        a.sh_mark_writes(&buf, 0, 20);
        a.sh_mark_reads(&buf, 0, 20);
        let mut b = BlockCtx::new();
        let _unused: SharedBuf<f32> = b.shared_alloc(32);
        b.charge_shared(40);
        assert_eq!(a.counters, b.counters);
        let (diags, _) = a.finish_sanitize().unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sanitized_tally_matches_clean_usage() {
        let mut ctx = BlockCtx::sanitized(Some(0), 1 << 20);
        let data = vec![0.5f32; 64];
        let _ = ctx.g_read_lanes(&data, 0, 1, 0.0);
        let mut buf: SharedBuf<f64> = ctx.shared_alloc(4);
        ctx.warp_begin(0);
        ctx.sh_write(&mut buf, 1, 2.0);
        ctx.warp_end();
        ctx.sync_threads();
        ctx.warp_begin(1);
        assert_eq!(ctx.sh_read(&buf, 1), 2.0);
        ctx.warp_end();
        ctx.flops(3);
        ctx.note_iters(1);
        let (diags, suppressed) = ctx.finish_sanitize().unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(suppressed, 0);
    }

    #[test]
    fn sanitized_direct_poke_is_a_charge_mismatch() {
        let mut ctx = BlockCtx::sanitized(Some(0), 1 << 20);
        ctx.flops(5);
        ctx.counters.shuffles += 2; // bypasses the charge API
        let (diags, _) = ctx.finish_sanitize().unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].hazard, Hazard::ChargeMismatch);
        assert!(diags[0].detail.contains("shuffles"));
    }
}
