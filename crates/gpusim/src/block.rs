//! Per-block execution context: instrumented memory and warp primitives.

use crate::counters::Counters;
use crate::lanes::{ballot, Lanes, WARP};

/// Shared memory buffer owned by one simulated thread block.
///
/// Allocate through [`BlockCtx::shared_alloc`] so the footprint is tracked
/// against the kernel's declared shared-memory usage.
#[derive(Clone, Debug)]
pub struct SharedBuf<T> {
    data: Vec<T>,
}

impl<T: Copy + Default> SharedBuf<T> {
    /// Length in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Direct view of the backing storage for bulk fast paths. Accesses
    /// through the slice are **not** charged — callers must account for
    /// them with [`BlockCtx::charge_shared`] so counter totals stay
    /// identical to the per-access [`BlockCtx::sh_read`]/[`BlockCtx::sh_write`]
    /// reference path.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view (same charging contract as [`SharedBuf::as_slice`]).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// Execution context of one thread block.
///
/// Every memory access and arithmetic operation a kernel performs goes
/// through these methods so that [`Counters`] mirror the real kernel's
/// event counts. The context is handed to [`crate::BlockKernel::run_block`]
/// once per block and merged by the launcher afterwards.
#[derive(Debug, Default)]
pub struct BlockCtx {
    /// Counters charged by this block (merged across blocks at launch end).
    pub counters: Counters,
    shared_bytes: usize,
}

impl BlockCtx {
    /// Fresh context (used by the launcher; kernels never construct one).
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared-memory bytes allocated so far by this block.
    pub fn shared_bytes(&self) -> usize {
        self.shared_bytes
    }

    // ---- global memory -------------------------------------------------

    /// Read one `f32` from global memory.
    #[inline]
    pub fn g_read(&mut self, data: &[f32], i: usize) -> f32 {
        self.counters.global_read_bytes += 4;
        data[i]
    }

    /// Read 32 lanes from global memory: lane `l` gets `data[base + l*stride]`;
    /// out-of-range lanes receive `fill`. One coalesced transaction when
    /// `stride == 1`.
    pub fn g_read_lanes(&mut self, data: &[f32], base: usize, stride: usize, fill: f32) -> Lanes<f32> {
        // Stride-1 fully-in-bounds reads — the interior of every row walk —
        // take a contiguous fast path: one slice copy the compiler can
        // vectorize and a single 128-byte counter add (the same total the
        // per-lane path below charges as 32 unit adds).
        if stride == 1 && base + WARP <= data.len() {
            let mut a = [0.0f32; WARP];
            a.copy_from_slice(&data[base..base + WARP]);
            self.counters.global_read_bytes += (4 * WARP) as u64;
            return Lanes::from_array(a);
        }
        let mut n = 0u64;
        let l = Lanes::from_fn(|i| {
            let idx = base + i * stride;
            if idx < data.len() {
                n += 1;
                data[idx]
            } else {
                fill
            }
        });
        self.counters.global_read_bytes += 4 * n;
        l
    }

    /// Write one `f32` to global memory.
    #[inline]
    pub fn g_write(&mut self, data: &mut [f32], i: usize, v: f32) {
        self.counters.global_write_bytes += 4;
        data[i] = v;
    }

    /// Charge a raw global write of `bytes` (for f64 partials etc.).
    #[inline]
    pub fn g_write_raw(&mut self, bytes: u64) {
        self.counters.global_write_bytes += bytes;
    }

    /// Charge a raw global read of `bytes`.
    #[inline]
    pub fn g_read_raw(&mut self, bytes: u64) {
        self.counters.global_read_bytes += bytes;
    }

    /// Charge `bytes` of scattered (uncoalesced) global traffic.
    #[inline]
    pub fn g_scatter(&mut self, bytes: u64) {
        self.counters.global_scatter_bytes += bytes;
    }

    // ---- batched charging ------------------------------------------------
    //
    // Bulk fast paths move data through plain slices and settle the
    // accounting in one add per row/tile instead of one per access. Each
    // helper must be fed the exact access count its per-access counterpart
    // would have charged, so totals stay identical between paths.

    /// Charge `n` coalesced 4-byte global lane reads in one accounting op
    /// (the batched form of [`BlockCtx::g_read`]).
    #[inline]
    pub fn charge_lane_reads(&mut self, n: u64) {
        self.counters.global_read_bytes += 4 * n;
    }

    /// Charge `n` coalesced 4-byte global lane writes in one accounting op
    /// (the batched form of [`BlockCtx::g_write`]).
    #[inline]
    pub fn charge_lane_writes(&mut self, n: u64) {
        self.counters.global_write_bytes += 4 * n;
    }

    /// Charge `n` shared-memory word accesses in one accounting op (the
    /// batched form of [`BlockCtx::sh_read`]/[`BlockCtx::sh_write`]).
    #[inline]
    pub fn charge_shared(&mut self, n: u64) {
        self.counters.shared_accesses += n;
    }

    /// Charge `n` warp shuffles in one accounting op (the batched form of
    /// the [`BlockCtx::shfl_down`] family).
    #[inline]
    pub fn charge_shuffles(&mut self, n: u64) {
        self.counters.shuffles += n;
    }

    // ---- shared memory -------------------------------------------------

    /// Allocate a shared-memory buffer of `len` elements.
    pub fn shared_alloc<T: Copy + Default>(&mut self, len: usize) -> SharedBuf<T> {
        self.shared_bytes += len * std::mem::size_of::<T>();
        SharedBuf { data: vec![T::default(); len] }
    }

    /// Read an element of shared memory.
    #[inline]
    pub fn sh_read<T: Copy + Default>(&mut self, buf: &SharedBuf<T>, i: usize) -> T {
        self.counters.shared_accesses += 1;
        buf.data[i]
    }

    /// Write an element of shared memory.
    #[inline]
    pub fn sh_write<T: Copy + Default>(&mut self, buf: &mut SharedBuf<T>, i: usize, v: T) {
        self.counters.shared_accesses += 1;
        buf.data[i] = v;
    }

    // ---- warp primitives -------------------------------------------------

    /// `__shfl_down_sync` with cost accounting (one shuffle instruction).
    #[inline]
    pub fn shfl_down<T: Copy + Default>(&mut self, l: &Lanes<T>, mask: u32, delta: usize) -> Lanes<T> {
        self.counters.shuffles += 1;
        l.shfl_down(mask, delta)
    }

    /// `__shfl_up_sync` with cost accounting.
    #[inline]
    pub fn shfl_up<T: Copy + Default>(&mut self, l: &Lanes<T>, mask: u32, delta: usize) -> Lanes<T> {
        self.counters.shuffles += 1;
        l.shfl_up(mask, delta)
    }

    /// `__shfl_xor_sync` with cost accounting.
    #[inline]
    pub fn shfl_xor<T: Copy + Default>(&mut self, l: &Lanes<T>, mask: u32, lane_mask: usize) -> Lanes<T> {
        self.counters.shuffles += 1;
        l.shfl_xor(mask, lane_mask)
    }

    /// `__ballot_sync` with cost accounting.
    #[inline]
    pub fn ballot(&mut self, mask: u32, pred: impl FnMut(usize) -> bool) -> u32 {
        self.counters.ballots += 1;
        ballot(mask, pred)
    }

    /// `__syncthreads()` — a block barrier. (Blocks are simulated
    /// warp-synchronously so this is purely a cost event.)
    #[inline]
    pub fn sync_threads(&mut self) {
        self.counters.syncs += 1;
    }

    // ---- arithmetic charging ---------------------------------------------

    /// Charge `n` ALU lane-operations.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.counters.lane_flops += n;
    }

    /// Charge one full-warp ALU operation (32 lane-ops).
    #[inline]
    pub fn warp_op(&mut self) {
        self.counters.lane_flops += WARP as u64;
    }

    /// Charge `n` special-function lane-operations (div/sqrt/log/exp).
    #[inline]
    pub fn special(&mut self, n: u64) {
        self.counters.special_ops += n;
    }

    /// Record `n` additional sequential iterations of the per-thread loop
    /// (Table II's Iters/thread).
    #[inline]
    pub fn note_iters(&mut self, n: u64) {
        self.counters.iters_per_thread += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_reads_charge_bytes() {
        let mut ctx = BlockCtx::new();
        let data = vec![1.0f32, 2.0, 3.0];
        assert_eq!(ctx.g_read(&data, 1), 2.0);
        assert_eq!(ctx.counters.global_read_bytes, 4);
        let lanes = ctx.g_read_lanes(&data, 0, 1, 0.0);
        assert_eq!(lanes.lane(0), 1.0);
        assert_eq!(lanes.lane(2), 3.0);
        assert_eq!(lanes.lane(3), 0.0); // fill
        assert_eq!(ctx.counters.global_read_bytes, 4 + 12); // only 3 valid lanes
    }

    #[test]
    fn lane_read_fast_path_matches_general_path() {
        // A stride-1 fully-in-bounds read takes the slice-copy fast path;
        // values and charged bytes must equal the per-lane general path.
        let data: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let mut fast = BlockCtx::new();
        let got = fast.g_read_lanes(&data, 17, 1, -1.0);
        let mut general = BlockCtx::new();
        let want = Lanes::from_fn(|i| {
            general.counters.global_read_bytes += 4;
            data[17 + i]
        });
        assert_eq!(got, want);
        assert_eq!(fast.counters.global_read_bytes, general.counters.global_read_bytes);
        // Strided and tail reads stay on the general path (charging only
        // in-bounds lanes).
        let tail = fast.g_read_lanes(&data, 90, 1, 0.0);
        assert_eq!(tail.lane(9), data[99]);
        assert_eq!(tail.lane(10), 0.0);
        assert_eq!(fast.counters.global_read_bytes, 128 + 40);
    }

    #[test]
    fn batched_charges_match_per_access_totals() {
        let mut a = BlockCtx::new();
        let mut b = BlockCtx::new();
        for _ in 0..37 {
            a.counters.global_read_bytes += 4;
            a.counters.shared_accesses += 1;
            a.counters.shuffles += 1;
            a.counters.global_write_bytes += 4;
        }
        b.charge_lane_reads(37);
        b.charge_shared(37);
        b.charge_shuffles(37);
        b.charge_lane_writes(37);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn shared_buf_slices_expose_storage_uncharged() {
        let mut ctx = BlockCtx::new();
        let mut buf: SharedBuf<f32> = ctx.shared_alloc(8);
        buf.as_mut_slice()[3] = 2.5;
        assert_eq!(buf.as_slice()[3], 2.5);
        assert_eq!(ctx.counters.shared_accesses, 0); // caller charges in bulk
        ctx.charge_shared(2);
        assert_eq!(ctx.counters.shared_accesses, 2);
    }

    #[test]
    fn shared_alloc_tracks_footprint() {
        let mut ctx = BlockCtx::new();
        let mut buf: SharedBuf<f32> = ctx.shared_alloc(1024);
        assert_eq!(ctx.shared_bytes(), 4096);
        ctx.sh_write(&mut buf, 7, 1.5);
        assert_eq!(ctx.sh_read(&buf, 7), 1.5);
        assert_eq!(ctx.counters.shared_accesses, 2);
    }

    #[test]
    fn warp_primitives_charge_counters() {
        let mut ctx = BlockCtx::new();
        let l = Lanes::<f32>::from_fn(|i| i as f32);
        let _ = ctx.shfl_down(&l, u32::MAX, 1);
        let _ = ctx.shfl_xor(&l, u32::MAX, 2);
        let _ = ctx.ballot(u32::MAX, |i| i < 4);
        ctx.sync_threads();
        assert_eq!(ctx.counters.shuffles, 2);
        assert_eq!(ctx.counters.ballots, 1);
        assert_eq!(ctx.counters.syncs, 1);
    }

    #[test]
    fn flop_charging() {
        let mut ctx = BlockCtx::new();
        ctx.flops(10);
        ctx.warp_op();
        ctx.special(3);
        ctx.note_iters(5);
        assert_eq!(ctx.counters.lane_flops, 42);
        assert_eq!(ctx.counters.special_ops, 3);
        assert_eq!(ctx.counters.iters_per_thread, 5);
    }
}
