//! The 32-lane warp register vector and CUDA shuffle semantics.

/// CUDA warp size.
pub const WARP: usize = 32;

/// One warp's worth of a per-thread register: 32 lanes of `T`.
///
/// Kernels written against the simulator are *warp-synchronous*: instead of
/// one value per simulated thread they manipulate whole `Lanes` vectors, and
/// the shuffle methods reproduce `__shfl_*_sync` semantics exactly (a lane
/// outside the mask or sourcing beyond the warp keeps its own value).
///
/// These methods are *pure data movement*; cost accounting happens in
/// [`crate::BlockCtx`]'s wrapping methods, which kernels should use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lanes<T>(pub [T; WARP]);

impl<T: Copy + Default> Lanes<T> {
    /// All lanes set to `v`.
    pub fn splat(v: T) -> Self {
        Lanes([v; WARP])
    }

    /// Build from a function of the lane id.
    pub fn from_fn(mut f: impl FnMut(usize) -> T) -> Self {
        let mut a = [T::default(); WARP];
        for (i, slot) in a.iter_mut().enumerate() {
            *slot = f(i);
        }
        Lanes(a)
    }

    /// Value in lane `i`.
    #[inline]
    pub fn lane(&self, i: usize) -> T {
        self.0[i]
    }

    /// Borrow the lanes as a plain array — the struct-of-arrays fast paths
    /// index this directly instead of going through per-lane closures.
    #[inline]
    pub fn as_array(&self) -> &[T; WARP] {
        &self.0
    }

    /// Wrap a plain array as a lane vector.
    #[inline]
    pub fn from_array(a: [T; WARP]) -> Self {
        Lanes(a)
    }

    /// Set lane `i`.
    #[inline]
    pub fn set_lane(&mut self, i: usize, v: T) {
        self.0[i] = v;
    }

    /// `__shfl_down_sync`: lane `i` receives lane `i + delta`'s value when
    /// both lanes are inside `mask` and `i + delta < 32`; otherwise it keeps
    /// its own value.
    pub fn shfl_down(&self, mask: u32, delta: usize) -> Self {
        Lanes::from_fn(|i| {
            let src = i + delta;
            if src < WARP && mask & (1 << i) != 0 && mask & (1 << src) != 0 {
                self.0[src]
            } else {
                self.0[i]
            }
        })
    }

    /// `__shfl_up_sync`: lane `i` receives lane `i - delta`'s value.
    pub fn shfl_up(&self, mask: u32, delta: usize) -> Self {
        Lanes::from_fn(|i| {
            if i >= delta && mask & (1 << i) != 0 && mask & (1 << (i - delta)) != 0 {
                self.0[i - delta]
            } else {
                self.0[i]
            }
        })
    }

    /// `__shfl_xor_sync`: lane `i` exchanges with lane `i ^ lane_mask`.
    pub fn shfl_xor(&self, mask: u32, lane_mask: usize) -> Self {
        Lanes::from_fn(|i| {
            let src = i ^ lane_mask;
            if src < WARP && mask & (1 << i) != 0 && mask & (1 << src) != 0 {
                self.0[src]
            } else {
                self.0[i]
            }
        })
    }

    /// `__shfl_sync` broadcast: every masked lane receives lane `src`'s
    /// value.
    pub fn shfl_broadcast(&self, mask: u32, src: usize) -> Self {
        Lanes::from_fn(|i| {
            if mask & (1 << i) != 0 {
                self.0[src]
            } else {
                self.0[i]
            }
        })
    }

    /// Combine two lane vectors elementwise.
    pub fn zip_with(&self, other: &Self, mut f: impl FnMut(T, T) -> T) -> Self {
        Lanes::from_fn(|i| f(self.0[i], other.0[i]))
    }

    /// Map each lane.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Lanes<U> {
        Lanes::from_fn(|i| f(self.0[i]))
    }

    /// Horizontal fold over all lanes (diagnostic/reference use — real
    /// kernels reduce via shuffles so the cost is charged faithfully).
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, T) -> A) -> A {
        let mut acc = init;
        for &v in &self.0 {
            acc = f(acc, v);
        }
        acc
    }
}

/// `__ballot_sync`: bitmask of masked lanes whose predicate holds.
pub fn ballot(mask: u32, mut pred: impl FnMut(usize) -> bool) -> u32 {
    let mut out = 0u32;
    for i in 0..WARP {
        if mask & (1 << i) != 0 && pred(i) {
            out |= 1 << i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: u32 = u32::MAX;

    fn iota() -> Lanes<f32> {
        Lanes::from_fn(|i| i as f32)
    }

    #[test]
    fn shfl_down_shifts_and_preserves_tail() {
        let l = iota().shfl_down(FULL, 4);
        assert_eq!(l.lane(0), 4.0);
        assert_eq!(l.lane(27), 31.0);
        // Lanes 28..31 keep their own values (source out of warp).
        assert_eq!(l.lane(28), 28.0);
        assert_eq!(l.lane(31), 31.0);
    }

    #[test]
    fn shfl_up_mirrors_down() {
        let l = iota().shfl_up(FULL, 3);
        assert_eq!(l.lane(0), 0.0);
        assert_eq!(l.lane(2), 2.0);
        assert_eq!(l.lane(3), 0.0);
        assert_eq!(l.lane(31), 28.0);
    }

    #[test]
    fn shfl_xor_is_an_involution() {
        let l = iota();
        let swapped = l.shfl_xor(FULL, 16);
        assert_eq!(swapped.lane(0), 16.0);
        assert_eq!(swapped.lane(16), 0.0);
        assert_eq!(swapped.shfl_xor(FULL, 16), l);
    }

    #[test]
    fn masked_lanes_keep_their_value() {
        let mask = 0x0000_FFFF; // lanes 0..16
        let l = iota().shfl_down(mask, 8);
        assert_eq!(l.lane(0), 8.0);
        assert_eq!(l.lane(7), 15.0);
        // Lane 8's source (16) is outside the mask → keeps own value.
        assert_eq!(l.lane(8), 8.0);
        // Lane 20 is outside the mask entirely.
        assert_eq!(l.lane(20), 20.0);
    }

    #[test]
    fn warp_reduction_via_shfl_down_tree() {
        // The classic butterfly from the paper's Algorithm 1, lines 7-8.
        let mut v = iota();
        let mut offset = WARP / 2;
        while offset > 0 {
            let shifted = v.shfl_down(FULL, offset);
            v = v.zip_with(&shifted, |a, b| a + b);
            offset /= 2;
        }
        // Lane 0 holds the sum 0+1+...+31 = 496.
        assert_eq!(v.lane(0), 496.0);
    }

    #[test]
    fn ballot_collects_predicate_lanes() {
        let b = ballot(FULL, |i| i < 25);
        assert_eq!(b, (1u32 << 25) - 1);
        let b2 = ballot(0xFF, |i| i % 2 == 0);
        assert_eq!(b2, 0b01010101);
    }

    #[test]
    fn broadcast_spreads_one_lane() {
        let l = iota().shfl_broadcast(FULL, 5);
        assert!((0..WARP).all(|i| l.lane(i) == 5.0));
    }
}
