//! Event counters charged by every simulator primitive.

/// Architecture-independent execution counts.
///
/// These are the quantities the paper's optimizations actually change
/// (kernel fusion reduces `global_read_bytes` and `launches`; the FIFO
/// buffer reduces `global_read_bytes` for pattern 3; occupancy limits come
/// from the resource declarations) — so they are what the cost model prices.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Bytes read from global (device) memory.
    pub global_read_bytes: u64,
    /// Bytes written to global memory.
    pub global_write_bytes: u64,
    /// Bytes moved by *scattered* (uncoalesced) global accesses — priced at
    /// the device's scatter bandwidth, a small fraction of peak (sector
    /// waste + latency). The no-FIFO SSIM spill produces these.
    pub global_scatter_bytes: u64,
    /// Shared-memory accesses (reads + writes), in 4-byte words.
    pub shared_accesses: u64,
    /// Arithmetic lane-operations (one ALU op on one lane).
    pub lane_flops: u64,
    /// Special-function lane-operations (sqrt, log, exp, div).
    pub special_ops: u64,
    /// Warp shuffle instructions (each moves a full 32-lane register).
    pub shuffles: u64,
    /// Warp ballot/vote instructions.
    pub ballots: u64,
    /// Block-level `__syncthreads()` barriers executed.
    pub syncs: u64,
    /// Kernel launches.
    pub launches: u64,
    /// Cooperative grid-wide synchronizations.
    pub grid_syncs: u64,
    /// Deepest sequential per-thread iteration count observed
    /// (Table II's "Iters/thread"; combined with `max`).
    pub iters_per_thread: u64,
}

impl Counters {
    /// Fold another counter set into this one (sums, except the iteration
    /// depth which takes the maximum — it is a per-thread serial depth, not
    /// an aggregate).
    pub fn merge(&mut self, o: &Counters) {
        self.global_read_bytes += o.global_read_bytes;
        self.global_write_bytes += o.global_write_bytes;
        self.global_scatter_bytes += o.global_scatter_bytes;
        self.shared_accesses += o.shared_accesses;
        self.lane_flops += o.lane_flops;
        self.special_ops += o.special_ops;
        self.shuffles += o.shuffles;
        self.ballots += o.ballots;
        self.syncs += o.syncs;
        self.launches += o.launches;
        self.grid_syncs += o.grid_syncs;
        self.iters_per_thread = self.iters_per_thread.max(o.iters_per_thread);
    }

    /// Total global-memory traffic in bytes.
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Per-device share of a grid-partitioned launch: divide every
    /// *additive* quantity by `g` (rounding up — the makespan device holds
    /// the largest share), while preserving the launch structure
    /// (`launches`, `grid_syncs`) and the per-thread serial depth
    /// (`iters_per_thread`), which do not shrink when a grid is split.
    ///
    /// The exhaustive destructuring is deliberate: adding a counter field
    /// without deciding whether it scales per-device is a compile error
    /// here, not a silently unscaled quantity.
    pub fn div_ceil_by(&self, g: u64) -> Counters {
        assert!(g >= 1, "device count must be >= 1");
        let Counters {
            global_read_bytes,
            global_write_bytes,
            global_scatter_bytes,
            shared_accesses,
            lane_flops,
            special_ops,
            shuffles,
            ballots,
            syncs,
            launches,
            grid_syncs,
            iters_per_thread,
        } = *self;
        let d = |v: u64| v.div_ceil(g);
        Counters {
            global_read_bytes: d(global_read_bytes),
            global_write_bytes: d(global_write_bytes),
            global_scatter_bytes: d(global_scatter_bytes),
            shared_accesses: d(shared_accesses),
            lane_flops: d(lane_flops),
            special_ops: d(special_ops),
            shuffles: d(shuffles),
            ballots: d(ballots),
            syncs: d(syncs),
            launches,
            grid_syncs,
            iters_per_thread,
        }
    }

    /// Fold an iterator of counter sets into one (the campaign-level
    /// aggregation: sums everywhere, max for the per-thread serial depth —
    /// same invariant as [`Counters::merge`]).
    pub fn merged<'a, I: IntoIterator<Item = &'a Counters>>(iter: I) -> Counters {
        let mut acc = Counters::default();
        for c in iter {
            acc.merge(c);
        }
        acc
    }
}

impl std::iter::Sum<Counters> for Counters {
    fn sum<I: Iterator<Item = Counters>>(iter: I) -> Counters {
        let mut acc = Counters::default();
        for c in iter {
            acc.merge(&c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Counters {
            global_read_bytes: 10,
            iters_per_thread: 5,
            ..Default::default()
        };
        let b = Counters {
            global_read_bytes: 3,
            global_write_bytes: 7,
            iters_per_thread: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_read_bytes, 13);
        assert_eq!(a.global_bytes(), 20);
        assert_eq!(a.iters_per_thread, 5);
    }

    #[test]
    fn div_ceil_by_scales_every_additive_field_and_preserves_structure() {
        // Every field odd and distinct, so div_ceil rounding is visible and
        // a field accidentally divided (or accidentally preserved) shows up
        // as a unique wrong value.
        let c = Counters {
            global_read_bytes: 101,
            global_write_bytes: 103,
            global_scatter_bytes: 105,
            shared_accesses: 107,
            lane_flops: 109,
            special_ops: 111,
            shuffles: 113,
            ballots: 115,
            syncs: 117,
            launches: 7,
            grid_syncs: 5,
            iters_per_thread: 33,
        };
        let s = c.div_ceil_by(4);
        // Additive quantities: ceil-divided.
        assert_eq!(s.global_read_bytes, 26);
        assert_eq!(s.global_write_bytes, 26);
        assert_eq!(s.global_scatter_bytes, 27);
        assert_eq!(s.shared_accesses, 27);
        assert_eq!(s.lane_flops, 28);
        assert_eq!(s.special_ops, 28);
        assert_eq!(s.shuffles, 29);
        assert_eq!(s.ballots, 29);
        assert_eq!(s.syncs, 30);
        // Structural quantities: preserved.
        assert_eq!(s.launches, 7);
        assert_eq!(s.grid_syncs, 5);
        assert_eq!(s.iters_per_thread, 33);
        // g = 1 is the identity.
        assert_eq!(c.div_ceil_by(1), c);
    }

    #[test]
    fn merged_equals_pairwise_merge() {
        let sets = [
            Counters {
                global_read_bytes: 4,
                iters_per_thread: 9,
                ..Default::default()
            },
            Counters {
                global_write_bytes: 6,
                launches: 2,
                ..Default::default()
            },
            Counters {
                lane_flops: 11,
                iters_per_thread: 3,
                ..Default::default()
            },
        ];
        let m = Counters::merged(sets.iter());
        let s: Counters = sets.iter().copied().sum();
        assert_eq!(m, s);
        assert_eq!(m.global_read_bytes, 4);
        assert_eq!(m.global_write_bytes, 6);
        assert_eq!(m.lane_flops, 11);
        assert_eq!(m.launches, 2);
        assert_eq!(m.iters_per_thread, 9);
        assert_eq!(Counters::merged(std::iter::empty()), Counters::default());
    }
}
