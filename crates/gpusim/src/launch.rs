//! Kernel launching: parallel functional execution + cost assembly.

use crate::block::BlockCtx;
use crate::cost::{gpu_time, GpuCalib, ModeledTime};
use crate::counters::Counters;
use crate::occupancy::{occupancy, KernelResources, Occupancy};
use crate::sanitizer::{self, SanitizeReport};
use crate::spec::DeviceSpec;

/// The computational-pattern class of a kernel (Table I of the paper),
/// selecting the calibrated achieved-efficiency band in the cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelClass {
    /// Pattern 1: global reductions.
    GlobalReduction,
    /// Pattern 2: stencil-like (shared-memory cubes).
    Stencil,
    /// Pattern 3: sliding-window (SSIM).
    SlidingWindow,
    /// Anything else.
    Generic,
}

/// A simulated CUDA kernel.
///
/// `run_block` executes one thread block's work (called once per block in
/// the grid, in parallel, each with a private [`BlockCtx`]); `finalize`
/// models the cooperative-grid phase that folds per-block partials (the
/// `cg::sync(grid)` + block-0 loop of the paper's Algorithm 1).
pub trait BlockKernel: Sync {
    /// Per-block result type.
    type Partial: Send;
    /// Final kernel output.
    type Output;

    /// Kernel name used in sanitizer diagnostics and trace output.
    fn name(&self) -> &'static str {
        "unnamed-kernel"
    }

    /// Compile-time resource usage (drives occupancy — Table II).
    fn resources(&self) -> KernelResources;

    /// Pattern class for the cost model.
    fn class(&self) -> KernelClass;

    /// Whether the kernel uses cooperative-groups grid sync (true, as in
    /// cuZC's pattern-1) or needs a second launch for the final fold
    /// (false — the moZC/CUB style).
    fn cooperative(&self) -> bool {
        true
    }

    /// Execute one thread block.
    fn run_block(&self, block_idx: usize, ctx: &mut BlockCtx) -> Self::Partial;

    /// Fold the per-block partials (grid-level reduction phase).
    fn finalize(&self, ctx: &mut BlockCtx, partials: Vec<Self::Partial>) -> Self::Output;
}

// A reference to a kernel is itself a kernel, so adapters (e.g. a
// reference-path wrapper) can borrow instead of consuming the kernel.
impl<K: BlockKernel> BlockKernel for &K {
    type Partial = K::Partial;
    type Output = K::Output;

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn resources(&self) -> KernelResources {
        (**self).resources()
    }

    fn class(&self) -> KernelClass {
        (**self).class()
    }

    fn cooperative(&self) -> bool {
        (**self).cooperative()
    }

    fn run_block(&self, block_idx: usize, ctx: &mut BlockCtx) -> Self::Partial {
        (**self).run_block(block_idx, ctx)
    }

    fn finalize(&self, ctx: &mut BlockCtx, partials: Vec<Self::Partial>) -> Self::Output {
        (**self).finalize(ctx, partials)
    }
}

/// Result of a simulated launch.
#[derive(Clone, Debug)]
pub struct LaunchResult<O> {
    /// The kernel's functional output.
    pub output: O,
    /// Merged execution counters.
    pub counters: Counters,
    /// Occupancy achieved by the kernel's resource declaration.
    pub occupancy: Occupancy,
    /// Grid size used.
    pub grid_blocks: usize,
    /// Modeled execution time.
    pub modeled: ModeledTime,
}

/// One slab's share of a tiled launch (see [`GpuSim::launch_tiled`]): the
/// contiguous block range it covered, the counters charged to it, and its
/// modeled seconds. Merging every slab's counters reproduces the monolithic
/// launch counters **exactly** — the launch fee is attributed to the first
/// slab, the grid-fold (finalize) charges and the cooperative sync (or
/// second launch) to the last.
#[derive(Clone, Debug)]
pub struct TileCharge {
    /// First block of this slab's contiguous block range.
    pub block_start: usize,
    /// Number of blocks in the range.
    pub blocks: usize,
    /// Counters charged to this slab.
    pub counters: Counters,
    /// Modeled seconds for this slab, priced at the full grid's
    /// utilization: tiled execution models a persistent stream pipeline
    /// whose slab launches are enqueued back-to-back, so the device stays
    /// at steady state between slabs instead of draining.
    pub seconds: f64,
}

/// The simulated GPU device.
#[derive(Clone, Debug)]
pub struct GpuSim {
    /// Hardware description.
    pub dev: DeviceSpec,
    /// Cost-model calibration.
    pub calib: GpuCalib,
}

impl GpuSim {
    /// A V100 with default calibration (the paper's platform).
    pub fn v100() -> Self {
        GpuSim {
            dev: DeviceSpec::v100(),
            calib: GpuCalib::default(),
        }
    }

    /// Launch `kernel` over `grid_blocks` thread blocks.
    ///
    /// Blocks run in parallel (functionally exact; block interleaving
    /// cannot be observed because cross-block communication happens only at
    /// the finalize phase). Counters are merged across blocks; the modeled
    /// time is assembled from the merged counters, the occupancy result and
    /// the grid geometry.
    ///
    /// When the sanitizer is globally enabled ([`sanitizer::set_enabled`] or
    /// `ZC_SANITIZE=1`) the launch runs checked and publishes its
    /// [`SanitizeReport`] to the global sink ([`sanitizer::drain`]);
    /// sanitized execution is observation-only, so the returned result is
    /// bit-identical either way.
    pub fn launch<K: BlockKernel>(
        &self,
        kernel: &K,
        grid_blocks: usize,
    ) -> LaunchResult<K::Output> {
        let (result, report) = self.launch_impl(kernel, grid_blocks, sanitizer::enabled());
        if let Some(report) = report {
            sanitizer::publish(&report);
        }
        result
    }

    /// Launch `kernel` in checked (sanitized) mode regardless of the global
    /// switch, returning the structured diagnostics alongside the result.
    /// The report is **not** published to the global sink.
    pub fn launch_checked<K: BlockKernel>(
        &self,
        kernel: &K,
        grid_blocks: usize,
    ) -> (LaunchResult<K::Output>, SanitizeReport) {
        let (result, report) = self.launch_impl(kernel, grid_blocks, true);
        (
            result,
            report.expect("sanitized launch always yields a report"),
        )
    }

    /// Launch `kernel` as `slabs` contiguous block ranges that stream
    /// through the device in ascending order (z-slab tiling: one block per
    /// z-plane in the P1/P2 grids, so a block range *is* a plane slab).
    ///
    /// Functionally this is the same launch — partials are collected in
    /// global block order and folded by one deferred finalize — so the
    /// output, merged counters and modeled time of the returned
    /// [`LaunchResult`] are bit-identical to [`GpuSim::launch`]. The extra
    /// [`TileCharge`] vector splits the charge per slab for the stream
    /// timeline: per-slab counters (launch fee on the first slab, the
    /// finalize and sync on the last) and per-slab seconds priced at the
    /// full grid's steady-state utilization.
    ///
    /// `slabs` is clamped to `[1, grid_blocks]`; degenerate requests
    /// (1-block grid, slab count ≥ grid) collapse to sensible tilings.
    pub fn launch_tiled<K: BlockKernel>(
        &self,
        kernel: &K,
        grid_blocks: usize,
        slabs: usize,
    ) -> (LaunchResult<K::Output>, Vec<TileCharge>) {
        let (result, tiles, report) =
            self.launch_tiled_impl(kernel, grid_blocks, slabs, sanitizer::enabled());
        if let Some(report) = report {
            sanitizer::publish(&report);
        }
        (result, tiles)
    }

    /// [`GpuSim::launch_tiled`] in checked (sanitized) mode regardless of
    /// the global switch. On top of the per-block shadow audit (fresh
    /// shadow state per block, so state resets between slabs by
    /// construction), the tiled path cross-checks that merging the
    /// per-slab charges reproduces the independently accumulated monolithic
    /// charge — a broken slab-attribution would surface as a
    /// [`Hazard::ChargeMismatch`](crate::Hazard::ChargeMismatch).
    pub fn launch_tiled_checked<K: BlockKernel>(
        &self,
        kernel: &K,
        grid_blocks: usize,
        slabs: usize,
    ) -> (LaunchResult<K::Output>, Vec<TileCharge>, SanitizeReport) {
        let (result, tiles, report) = self.launch_tiled_impl(kernel, grid_blocks, slabs, true);
        (
            result,
            tiles,
            report.expect("sanitized launch always yields a report"),
        )
    }

    fn launch_tiled_impl<K: BlockKernel>(
        &self,
        kernel: &K,
        grid_blocks: usize,
        slabs: usize,
        sanitize: bool,
    ) -> (
        LaunchResult<K::Output>,
        Vec<TileCharge>,
        Option<SanitizeReport>,
    ) {
        assert!(grid_blocks > 0, "empty grid");
        let slabs = slabs.clamp(1, grid_blocks);
        let smem = kernel.resources().smem_per_block;
        type Verdict = Option<(Vec<sanitizer::Diag>, u64)>;
        let mut report = sanitize.then(|| SanitizeReport {
            kernel: kernel.name().to_string(),
            grid_blocks,
            ..Default::default()
        });
        let mut partials = Vec::with_capacity(grid_blocks);
        let mut tiles: Vec<TileCharge> = Vec::with_capacity(slabs);
        // Independent accumulation of the monolithic charge (same merge
        // order as `launch_impl`), cross-checked against the per-slab
        // charges below.
        let mut audit = Counters {
            launches: 1,
            ..Default::default()
        };

        // Even contiguous split: the first `rem` slabs are one block longer.
        let base = grid_blocks / slabs;
        let rem = grid_blocks % slabs;
        let mut start = 0usize;
        for s in 0..slabs {
            let len = base + usize::from(s < rem);
            let mut results: Vec<(Counters, K::Partial, Verdict)> = zc_par::par_map(len, |i| {
                let b = start + i;
                let mut ctx = if sanitize {
                    BlockCtx::sanitized(Some(b), smem)
                } else {
                    BlockCtx::new()
                };
                let partial = kernel.run_block(b, &mut ctx);
                if !sanitize {
                    debug_assert!(
                        ctx.shared_bytes() <= smem as usize,
                        "block used {} shared bytes but declared {smem}",
                        ctx.shared_bytes(),
                    );
                }
                let verdict = ctx.finish_sanitize();
                (ctx.counters, partial, verdict)
            });
            let mut tc = Counters::default();
            if s == 0 {
                // The slab that opens the stream pays the launch fee.
                tc.launches = 1;
            }
            for (c, p, verdict) in results.drain(..) {
                tc.merge(&c);
                audit.merge(&c);
                partials.push(p);
                if let (Some(r), Some((diags, suppressed))) = (report.as_mut(), verdict) {
                    r.diags.extend(diags);
                    r.suppressed += suppressed;
                }
            }
            tiles.push(TileCharge {
                block_start: start,
                blocks: len,
                counters: tc,
                seconds: 0.0,
            });
            start += len;
        }

        // Grid-level fold runs once, after the last slab; partials are in
        // global block order, so the fold sees exactly what a monolithic
        // launch would. Its charges land on the last slab.
        let mut fctx = if sanitize {
            BlockCtx::sanitized(None, smem)
        } else {
            BlockCtx::new()
        };
        let output = kernel.finalize(&mut fctx, partials);
        let fverdict = fctx.finish_sanitize();
        audit.merge(&fctx.counters);
        if let (Some(r), Some((diags, suppressed))) = (report.as_mut(), fverdict) {
            r.diags.extend(diags);
            r.suppressed += suppressed;
        }
        let last = tiles.last_mut().expect("slabs >= 1");
        last.counters.merge(&fctx.counters);
        if kernel.cooperative() {
            last.counters.grid_syncs += 1;
            audit.grid_syncs += 1;
        } else {
            last.counters.launches += 1;
            audit.launches += 1;
        }

        let occ = occupancy(&self.dev, &kernel.resources());
        for t in tiles.iter_mut() {
            // Full-grid utilization, the slab's own traffic and overheads.
            t.seconds = gpu_time(
                &self.dev,
                &self.calib,
                &t.counters,
                &occ,
                grid_blocks,
                kernel.class(),
            )
            .total_s;
        }

        // Per-slab charge audit: the slab charges must re-merge to the
        // monolithic charge accumulated independently above.
        let counters = Counters::merged(tiles.iter().map(|t| &t.counters));
        if counters != audit {
            if let Some(r) = report.as_mut() {
                r.diags.push(sanitizer::Diag {
                    hazard: crate::sanitizer::Hazard::ChargeMismatch,
                    block: None,
                    warp: None,
                    epoch: 0,
                    buf: None,
                    index: None,
                    detail: format!(
                        "tiled launch: merged per-slab charges disagree with \
                         the monolithic charge ({slabs} slabs over {grid_blocks} blocks)"
                    ),
                });
            }
            debug_assert!(
                false,
                "tiled charge attribution lost or double-counted work"
            );
        }

        let modeled = gpu_time(
            &self.dev,
            &self.calib,
            &counters,
            &occ,
            grid_blocks,
            kernel.class(),
        );
        (
            LaunchResult {
                output,
                counters,
                occupancy: occ,
                grid_blocks,
                modeled,
            },
            tiles,
            report,
        )
    }

    fn launch_impl<K: BlockKernel>(
        &self,
        kernel: &K,
        grid_blocks: usize,
        sanitize: bool,
    ) -> (LaunchResult<K::Output>, Option<SanitizeReport>) {
        assert!(grid_blocks > 0, "empty grid");
        let smem = kernel.resources().smem_per_block;
        // Per-block sanitizer verdict: collected diagnostics + suppressed count.
        type Verdict = Option<(Vec<sanitizer::Diag>, u64)>;
        let mut results: Vec<(Counters, K::Partial, Verdict)> = zc_par::par_map(grid_blocks, |b| {
            let mut ctx = if sanitize {
                BlockCtx::sanitized(Some(b), smem)
            } else {
                BlockCtx::new()
            };
            let partial = kernel.run_block(b, &mut ctx);
            // Under the sanitizer the footprint check is a structured
            // SmemOverflow diagnostic emitted at shared_alloc time.
            if !sanitize {
                debug_assert!(
                    ctx.shared_bytes() <= smem as usize,
                    "block used {} shared bytes but declared {smem}",
                    ctx.shared_bytes(),
                );
            }
            let verdict = ctx.finish_sanitize();
            (ctx.counters, partial, verdict)
        });

        let mut counters = Counters {
            launches: 1,
            ..Default::default()
        };
        let mut partials = Vec::with_capacity(grid_blocks);
        let mut report = sanitize.then(|| SanitizeReport {
            kernel: kernel.name().to_string(),
            grid_blocks,
            ..Default::default()
        });
        for (c, p, verdict) in results.drain(..) {
            counters.merge(&c);
            partials.push(p);
            if let (Some(r), Some((diags, suppressed))) = (report.as_mut(), verdict) {
                r.diags.extend(diags);
                r.suppressed += suppressed;
            }
        }

        // Grid-level fold phase (audited as its own "block" when checked).
        let mut fctx = if sanitize {
            BlockCtx::sanitized(None, smem)
        } else {
            BlockCtx::new()
        };
        let output = kernel.finalize(&mut fctx, partials);
        let fverdict = fctx.finish_sanitize();
        counters.merge(&fctx.counters);
        if let (Some(r), Some((diags, suppressed))) = (report.as_mut(), fverdict) {
            r.diags.extend(diags);
            r.suppressed += suppressed;
        }
        if kernel.cooperative() {
            counters.grid_syncs += 1;
        } else {
            counters.launches += 1;
        }

        let occ = occupancy(&self.dev, &kernel.resources());
        let modeled = gpu_time(
            &self.dev,
            &self.calib,
            &counters,
            &occ,
            grid_blocks,
            kernel.class(),
        );
        (
            LaunchResult {
                output,
                counters,
                occupancy: occ,
                grid_blocks,
                modeled,
            },
            report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{Lanes, WARP};

    /// Toy kernel: each block sums a contiguous chunk of the input via a
    /// warp shuffle tree, then finalize folds the per-block sums.
    struct ChunkSum<'a> {
        data: &'a [f32],
        chunk: usize,
    }

    impl BlockKernel for ChunkSum<'_> {
        type Partial = f64;
        type Output = f64;

        fn resources(&self) -> KernelResources {
            KernelResources {
                regs_per_thread: 24,
                smem_per_block: 128,
                threads_per_block: 32,
            }
        }

        fn class(&self) -> KernelClass {
            KernelClass::GlobalReduction
        }

        fn run_block(&self, b: usize, ctx: &mut BlockCtx) -> f64 {
            let start = b * self.chunk;
            let end = ((b + 1) * self.chunk).min(self.data.len());
            let mut acc = Lanes::<f64>::splat(0.0);
            let mut i = start;
            while i < end {
                let lanes = ctx.g_read_lanes(self.data, i, 1, 0.0);
                // Guard the tail: lanes beyond `end` must not contribute.
                let valid = end - i;
                acc = Lanes::from_fn(|l| {
                    acc.lane(l) + if l < valid { lanes.lane(l) as f64 } else { 0.0 }
                });
                ctx.warp_op();
                ctx.note_iters(1);
                i += WARP;
            }
            let mut offset = WARP / 2;
            while offset > 0 {
                let sh = ctx.shfl_down(&acc, u32::MAX, offset);
                acc = acc.zip_with(&sh, |a, b| a + b);
                ctx.warp_op();
                offset /= 2;
            }
            acc.lane(0)
        }

        fn finalize(&self, ctx: &mut BlockCtx, partials: Vec<f64>) -> f64 {
            ctx.flops(partials.len() as u64);
            partials.into_iter().sum()
        }
    }

    #[test]
    fn functional_result_is_exact() {
        let data: Vec<f32> = (0..10_000).map(|i| (i % 7) as f32).collect();
        let expect: f64 = data.iter().map(|&v| v as f64).sum();
        let sim = GpuSim::v100();
        let k = ChunkSum {
            data: &data,
            chunk: 1024,
        };
        let r = sim.launch(&k, data.len().div_ceil(1024));
        assert_eq!(r.output, expect);
    }

    #[test]
    fn counters_match_expected_traffic() {
        let data: Vec<f32> = vec![1.0; 4096];
        let sim = GpuSim::v100();
        let k = ChunkSum {
            data: &data,
            chunk: 1024,
        };
        let r = sim.launch(&k, 4);
        // Every element read exactly once.
        assert_eq!(r.counters.global_read_bytes, 4096 * 4);
        // 5 shuffle steps per block.
        assert_eq!(r.counters.shuffles, 4 * 5);
        assert_eq!(r.counters.launches, 1);
        assert_eq!(r.counters.grid_syncs, 1);
        // 1024/32 = 32 sequential iterations per thread.
        assert_eq!(r.counters.iters_per_thread, 32);
    }

    #[test]
    fn launch_is_deterministic_despite_parallelism() {
        let data: Vec<f32> = (0..50_000).map(|i| (i as f32 * 0.001).sin()).collect();
        let sim = GpuSim::v100();
        let k = ChunkSum {
            data: &data,
            chunk: 2048,
        };
        let r1 = sim.launch(&k, data.len().div_ceil(2048));
        let r2 = sim.launch(&k, data.len().div_ceil(2048));
        assert_eq!(r1.output, r2.output);
        assert_eq!(r1.counters, r2.counters);
        assert_eq!(r1.modeled.total_s, r2.modeled.total_s);
    }

    #[test]
    fn modeled_time_is_positive_and_bounded() {
        let data: Vec<f32> = vec![0.5; 1 << 20];
        let sim = GpuSim::v100();
        let k = ChunkSum {
            data: &data,
            chunk: 4096,
        };
        let r = sim.launch(&k, data.len() / 4096);
        assert!(r.modeled.total_s > 0.0);
        // 4 MiB cannot take longer than a millisecond on a V100 model.
        assert!(r.modeled.total_s < 1e-3, "{}", r.modeled.total_s);
    }

    #[test]
    fn non_cooperative_kernel_pays_second_launch() {
        struct NonCoop<'a>(ChunkSum<'a>);
        impl BlockKernel for NonCoop<'_> {
            type Partial = f64;
            type Output = f64;
            fn resources(&self) -> KernelResources {
                self.0.resources()
            }
            fn class(&self) -> KernelClass {
                KernelClass::GlobalReduction
            }
            fn cooperative(&self) -> bool {
                false
            }
            fn run_block(&self, b: usize, ctx: &mut BlockCtx) -> f64 {
                self.0.run_block(b, ctx)
            }
            fn finalize(&self, ctx: &mut BlockCtx, p: Vec<f64>) -> f64 {
                self.0.finalize(ctx, p)
            }
        }
        let data: Vec<f32> = vec![1.0; 8192];
        let sim = GpuSim::v100();
        let coop = sim.launch(
            &ChunkSum {
                data: &data,
                chunk: 1024,
            },
            8,
        );
        let non = sim.launch(
            &NonCoop(ChunkSum {
                data: &data,
                chunk: 1024,
            }),
            8,
        );
        assert_eq!(coop.counters.launches, 1);
        assert_eq!(coop.counters.grid_syncs, 1);
        assert_eq!(non.counters.launches, 2);
        assert_eq!(non.counters.grid_syncs, 0);
        assert_eq!(coop.output, non.output);
    }

    #[test]
    fn tiled_launch_is_bit_identical_and_charges_sum() {
        let data: Vec<f32> = (0..50_000).map(|i| (i as f32 * 0.01).cos()).collect();
        let sim = GpuSim::v100();
        let k = ChunkSum {
            data: &data,
            chunk: 1024,
        };
        let grid = data.len().div_ceil(1024);
        let mono = sim.launch(&k, grid);
        for slabs in [1usize, 3, 7, grid, grid + 5] {
            let (tiled, tiles) = sim.launch_tiled(&k, grid, slabs);
            assert_eq!(
                mono.output.to_bits(),
                tiled.output.to_bits(),
                "slabs {slabs}"
            );
            assert_eq!(mono.counters, tiled.counters, "slabs {slabs}");
            assert_eq!(mono.modeled.total_s, tiled.modeled.total_s, "slabs {slabs}");
            assert_eq!(tiles.len(), slabs.min(grid));
            assert_eq!(tiles.iter().map(|t| t.blocks).sum::<usize>(), grid);
            assert_eq!(
                Counters::merged(tiles.iter().map(|t| &t.counters)),
                mono.counters,
                "slabs {slabs}: per-slab charges must re-merge to monolithic"
            );
            // Contiguous ascending coverage.
            let mut next = 0;
            for t in &tiles {
                assert_eq!(t.block_start, next);
                assert!(t.blocks > 0);
                assert!(t.seconds > 0.0);
                next += t.blocks;
            }
            // Steady-state pricing: the slab times sum to the monolithic
            // time up to per-slab roofline-bound selection — never less,
            // never wildly more.
            let sum: f64 = tiles.iter().map(|t| t.seconds).sum();
            assert!(sum >= mono.modeled.total_s * 0.999, "slabs {slabs}: {sum}");
            assert!(sum <= mono.modeled.total_s * 1.5, "slabs {slabs}: {sum}");
        }
    }

    #[test]
    fn tiled_checked_launch_is_clean_and_observation_only() {
        let data: Vec<f32> = vec![0.25; 16_384];
        let sim = GpuSim::v100();
        let k = ChunkSum {
            data: &data,
            chunk: 1024,
        };
        let grid = 16;
        let (plain, plain_tiles) = sim.launch_tiled(&k, grid, 4);
        let (checked, checked_tiles, report) = sim.launch_tiled_checked(&k, grid, 4);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.grid_blocks, grid);
        assert_eq!(plain.output.to_bits(), checked.output.to_bits());
        assert_eq!(plain.counters, checked.counters);
        for (a, b) in plain_tiles.iter().zip(&checked_tiles) {
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.seconds, b.seconds);
        }
    }

    #[test]
    fn checked_launch_is_observation_only_and_clean() {
        let data: Vec<f32> = (0..10_000).map(|i| ((i % 13) as f32).cos()).collect();
        let sim = GpuSim::v100();
        let k = ChunkSum {
            data: &data,
            chunk: 1024,
        };
        let grid = data.len().div_ceil(1024);
        let plain = sim.launch(&k, grid);
        let (checked, report) = sim.launch_checked(&k, grid);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.grid_blocks, grid);
        assert_eq!(plain.output.to_bits(), checked.output.to_bits());
        assert_eq!(plain.counters, checked.counters);
        assert_eq!(plain.modeled.total_s, checked.modeled.total_s);
    }

    #[test]
    fn globally_enabled_sanitizer_publishes_to_sink() {
        let data: Vec<f32> = vec![1.0; 2048];
        let sim = GpuSim::v100();
        let k = ChunkSum {
            data: &data,
            chunk: 1024,
        };
        sanitizer::set_enabled(true);
        let r = sim.launch(&k, 2);
        sanitizer::clear_override();
        assert_eq!(r.output, 2048.0);
        // Other tests may also publish while the override is on; just
        // require that at least this launch was checked and clean.
        let summary = sanitizer::drain();
        assert!(summary.launches_checked >= 1);
        assert!(
            summary
                .reports
                .iter()
                .all(|r| r.kernel != "unnamed-kernel" || r.is_clean()),
            "toy kernel flagged: {summary:?}"
        );
    }
}
