//! Multi-GPU scaling model — the paper's §VI future-work extension.
//!
//! The paper plans a multi-node multi-GPU cuZ-Checker built on the
//! single-GPU kernels, noting that inter-GPU synchronization and
//! communication dominate the design. This module models that extension:
//! a field is split along the z axis over `gpus` devices; pattern-1
//! metrics need only a tiny all-reduce of partials, while pattern-2/3
//! additionally exchange halo slabs with their neighbours.

use crate::cost::ModeledTime;

/// Interconnect + decomposition description for a multi-GPU run.
#[derive(Clone, Copy, Debug)]
pub struct MultiGpuModel {
    /// Number of devices.
    pub gpus: u32,
    /// Per-link interconnect bandwidth in GB/s (NVLink2 ≈ 25 GB/s per
    /// direction per link; PCIe3 x16 ≈ 12 GB/s).
    pub link_bw_gbs: f64,
    /// Per-message latency in seconds.
    pub link_latency_s: f64,
}

impl MultiGpuModel {
    /// NVLink-class interconnect over `gpus` devices.
    pub fn nvlink(gpus: u32) -> Self {
        assert!(gpus >= 1);
        MultiGpuModel {
            gpus,
            link_bw_gbs: 25.0,
            link_latency_s: 10.0e-6,
        }
    }

    /// PCIe-class interconnect over `gpus` devices.
    pub fn pcie(gpus: u32) -> Self {
        assert!(gpus >= 1);
        MultiGpuModel {
            gpus,
            link_bw_gbs: 12.0,
            link_latency_s: 20.0e-6,
        }
    }
}

/// Multi-GPU time estimate derived from a single-GPU launch model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultiGpuTime {
    /// Per-device compute time (single-GPU work / gpus).
    pub compute_s: f64,
    /// Halo-exchange time.
    pub halo_s: f64,
    /// Final all-reduce of scalar partials.
    pub allreduce_s: f64,
    /// Total.
    pub total_s: f64,
    /// Parallel efficiency versus a perfect split.
    pub efficiency: f64,
}

impl MultiGpuModel {
    /// Scale a single-GPU modeled time to this configuration.
    ///
    /// * `single` — the single-GPU launch model for the whole field;
    /// * `halo_bytes` — bytes of halo slab each device must exchange per
    ///   neighbour (0 for pattern 1);
    /// * `partial_bytes` — size of the per-device scalar partial set that
    ///   the final all-reduce combines.
    pub fn scale(&self, single: &ModeledTime, halo_bytes: u64, partial_bytes: u64) -> MultiGpuTime {
        let g = self.gpus as f64;
        // Work splits evenly along z; overheads do not.
        let compute_s = (single.total_s - single.overhead_s) / g + single.overhead_s;
        let halo_s = if self.gpus > 1 && halo_bytes > 0 {
            // Two neighbours exchange concurrently: one slab each way.
            2.0 * (self.link_latency_s + halo_bytes as f64 / (self.link_bw_gbs * 1e9))
        } else {
            0.0
        };
        let allreduce_s = if self.gpus > 1 {
            // Ring all-reduce: 2(g-1) steps of partials/g each.
            let steps = 2.0 * (g - 1.0);
            steps * (self.link_latency_s + partial_bytes as f64 / g / (self.link_bw_gbs * 1e9))
        } else {
            0.0
        };
        let total_s = compute_s + halo_s + allreduce_s;
        MultiGpuTime {
            compute_s,
            halo_s,
            allreduce_s,
            total_s,
            efficiency: single.total_s / (g * total_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Bound;

    fn single(total_ms: f64) -> ModeledTime {
        ModeledTime {
            mem_s: total_ms * 1e-3,
            compute_s: 0.0,
            smem_s: 0.0,
            overhead_s: 5e-6,
            total_s: total_ms * 1e-3,
            bound: Bound::Memory,
            utilization: 1.0,
        }
    }

    #[test]
    fn one_gpu_is_identity_like() {
        let m = MultiGpuModel::nvlink(1);
        let t = m.scale(&single(10.0), 1 << 20, 4096);
        assert!((t.total_s - 10.0e-3).abs() < 1e-9);
        assert!((t.efficiency - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scaling_reduces_time_but_not_linearly() {
        let m = MultiGpuModel::nvlink(4);
        let t = m.scale(&single(100.0), 64 << 20, 4096);
        assert!(t.total_s < 100.0e-3 / 2.0, "should beat 2 GPUs' ideal");
        assert!(t.total_s > 100.0e-3 / 4.0, "cannot beat ideal 4-way split");
        assert!(t.efficiency < 1.0 && t.efficiency > 0.5);
    }

    #[test]
    fn halo_free_patterns_scale_better() {
        let m = MultiGpuModel::nvlink(8);
        let with_halo = m.scale(&single(50.0), 256 << 20, 4096);
        let without = m.scale(&single(50.0), 0, 4096);
        assert!(without.total_s < with_halo.total_s);
        assert_eq!(without.halo_s, 0.0);
    }

    #[test]
    fn slower_links_hurt() {
        let t_nv = MultiGpuModel::nvlink(4).scale(&single(20.0), 128 << 20, 4096);
        let t_pci = MultiGpuModel::pcie(4).scale(&single(20.0), 128 << 20, 4096);
        assert!(t_pci.total_s > t_nv.total_s);
    }
}
