//! Hardware specifications of the paper's evaluation platforms (§IV).

/// A GPU device model. Defaults describe the paper's NVIDIA Tesla V100
/// (Volta, 80 SMs, 32 GB HBM2).
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name for reports.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// FP32 lanes (CUDA cores) per SM.
    pub fp32_lanes_per_sm: u32,
    /// Sustained SM clock in GHz.
    pub clock_ghz: f64,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads in a single thread block (1024 on every CUDA
    /// device since compute 2.0) — a launch-time hard limit, checked by
    /// the plan verifier before any launch exists.
    pub max_threads_per_block: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// Shared memory limit per thread block in bytes.
    pub smem_per_block: u32,
    /// Warp size (32 on every CUDA device).
    pub warp_size: u32,
    /// Peak global-memory bandwidth in GB/s.
    pub hbm_bw_gbs: f64,
    /// Shared-memory bytes per clock per SM.
    pub smem_bytes_per_clk_per_sm: f64,
    /// Device (global) memory capacity in bytes. Fields whose resident
    /// working set exceeds this must be assessed out-of-core (slab-tiled).
    pub mem_bytes: u64,
    /// Modeled watchdog (TDR-style) timeout in seconds: a hung launch
    /// occupies the device for exactly this long before the driver
    /// reclaims it — what a [`crate::fault::FaultDraw::Hang`] charges on
    /// the campaign timeline.
    pub watchdog_timeout_s: f64,
}

impl DeviceSpec {
    /// The paper's evaluation GPU: Tesla V100-SXM2-32GB.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "Tesla V100",
            sms: 80,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.53,
            regs_per_sm: 65_536,
            max_threads_per_sm: 2_048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            smem_per_sm: 96 * 1024,
            smem_per_block: 48 * 1024,
            warp_size: 32,
            hbm_bw_gbs: 900.0,
            smem_bytes_per_clk_per_sm: 128.0,
            mem_bytes: 32 * 1024 * 1024 * 1024,
            watchdog_timeout_s: 2.0,
        }
    }

    /// Peak FP32 throughput in operations per second.
    pub fn peak_flops(&self) -> f64 {
        self.sms as f64 * self.fp32_lanes_per_sm as f64 * self.clock_ghz * 1e9
    }

    /// Peak aggregate shared-memory bandwidth in bytes per second.
    pub fn peak_smem_bw(&self) -> f64 {
        self.sms as f64 * self.smem_bytes_per_clk_per_sm * self.clock_ghz * 1e9
    }
}

/// A CPU host model. Defaults describe the paper's Intel Xeon Gold 6148
/// (20 cores @ 2.40 GHz base, 27.5 MB L3).
#[derive(Clone, Debug, PartialEq)]
pub struct CpuSpec {
    /// Marketing name for reports.
    pub name: &'static str,
    /// Physical cores.
    pub cores: u32,
    /// Base clock in GHz.
    pub clock_ghz: f64,
    /// Sustained stream (memory) bandwidth in GB/s.
    pub stream_bw_gbs: f64,
}

impl CpuSpec {
    /// The paper's evaluation host CPU.
    pub fn xeon_6148() -> Self {
        CpuSpec {
            name: "Xeon Gold 6148",
            cores: 20,
            clock_ghz: 2.40,
            stream_bw_gbs: 100.0,
        }
    }

    /// Aggregate scalar issue rate in operations per second (one op per
    /// core-cycle — Z-checker's analysis loops are scalar, not vectorized).
    pub fn scalar_ops_rate(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_headline_numbers() {
        let d = DeviceSpec::v100();
        assert_eq!(d.sms, 80);
        assert_eq!(d.sms * d.fp32_lanes_per_sm, 5120); // paper: 5,120 cores
                                                       // ~15.7 TFLOPS FP32.
        assert!((d.peak_flops() / 1e12 - 7.83).abs() < 0.1);
        assert!(d.peak_smem_bw() > 10e12);
        assert_eq!(d.mem_bytes, 32 << 30); // paper: 32 GB HBM2
        assert!(d.watchdog_timeout_s > 0.0); // TDR-style hang reclaim
    }

    #[test]
    fn xeon_matches_paper_description() {
        let c = CpuSpec::xeon_6148();
        assert_eq!(c.cores, 20);
        assert!((c.clock_ghz - 2.4).abs() < 1e-9);
        assert!(c.scalar_ops_rate() > 4e10);
    }
}
