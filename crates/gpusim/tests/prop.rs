//! Property-based tests for the simulator primitives: shuffle semantics,
//! occupancy arithmetic and cost-model monotonicity. Cases come from a
//! deterministic inline RNG (no external property-testing dependency).

use zc_gpusim::cost::{gpu_time, CpuModel, GpuCalib};
use zc_gpusim::{occupancy, Counters, DeviceSpec, KernelClass, KernelResources, Lanes, WARP};

/// Deterministic splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn u64r(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * (((self.next() >> 11) as f64 / (1u64 << 53) as f64) as f32)
    }

    fn lanes(&mut self) -> Lanes<f32> {
        let v: Vec<f32> = (0..WARP).map(|_| self.f32(-1.0e6, 1.0e6)).collect();
        Lanes::from_fn(|i| v[i])
    }
}

#[test]
fn shfl_xor_is_involutive() {
    let mut rng = Rng(0x5f1);
    for case in 0..256 {
        let l = rng.lanes();
        let m = rng.usize(1, 32);
        let twice = l.shfl_xor(u32::MAX, m).shfl_xor(u32::MAX, m);
        assert_eq!(twice, l, "case {case}");
    }
}

#[test]
fn shfl_down_then_up_restores_interior() {
    let mut rng = Rng(0x5f2);
    for case in 0..256 {
        let l = rng.lanes();
        let d = rng.usize(1, 16);
        // For lanes in [d, 32-d), down(d) moves lane i+d into i; up(d)
        // moves it back.
        let roundtrip = l.shfl_down(u32::MAX, d).shfl_up(u32::MAX, d);
        for i in d..(WARP - d) {
            assert_eq!(roundtrip.lane(i), l.lane(i), "case {case} lane {i}");
        }
    }
}

#[test]
fn shuffle_reduction_tree_sums_all_lanes() {
    let mut rng = Rng(0x5f3);
    for case in 0..256 {
        let l = rng.lanes();
        // f64 butterfly: exact (no fp reordering issues at f64 for 32 f32s).
        let mut acc = l.map(|v| v as f64);
        let mut offset = WARP / 2;
        while offset > 0 {
            let sh = acc.shfl_down(u32::MAX, offset);
            acc = acc.zip_with(&sh, |a, b| a + b);
            offset /= 2;
        }
        let direct: f64 = (0..WARP).map(|i| l.lane(i) as f64).sum();
        assert!(
            (acc.lane(0) - direct).abs() <= 1e-9 * direct.abs().max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn occupancy_never_exceeds_hardware_limits() {
    let mut rng = Rng(0x0cc);
    for case in 0..256 {
        let regs = rng.usize(1, 256) as u32;
        let smem = rng.usize(0, 96 * 1024) as u32;
        let threads = rng.usize(32, 1025) as u32;
        let dev = DeviceSpec::v100();
        let res = KernelResources {
            regs_per_thread: regs,
            smem_per_block: smem,
            threads_per_block: threads,
        };
        let occ = occupancy(&dev, &res);
        assert!(occ.blocks_per_sm <= dev.max_blocks_per_sm, "case {case}");
        assert!(
            occ.blocks_per_sm * threads <= dev.max_threads_per_sm + threads,
            "case {case}"
        );
        assert!(occ.fraction <= 1.0 + 1e-12, "case {case}");
        // Resource accounting: the resident blocks actually fit.
        if occ.blocks_per_sm > 0 {
            assert!(
                occ.blocks_per_sm * res.regs_per_block() <= dev.regs_per_sm,
                "case {case}"
            );
            assert!(occ.blocks_per_sm * smem <= dev.smem_per_sm, "case {case}");
        }
    }
}

#[test]
fn more_registers_never_increase_occupancy() {
    let mut rng = Rng(0x0cd);
    for case in 0..256 {
        let regs = rng.usize(8, 128) as u32;
        let threads = 1u32 << rng.usize(5, 11);
        let dev = DeviceSpec::v100();
        let mk = |r| {
            occupancy(
                &dev,
                &KernelResources {
                    regs_per_thread: r,
                    smem_per_block: 0,
                    threads_per_block: threads,
                },
            )
        };
        assert!(
            mk(regs + 8).blocks_per_sm <= mk(regs).blocks_per_sm,
            "case {case}"
        );
    }
}

#[test]
fn gpu_time_is_monotone_in_every_counter() {
    let mut rng = Rng(0x6e7);
    for case in 0..256 {
        let bytes = rng.u64r(1, 1 << 32);
        let flops = rng.u64r(1, 1 << 34);
        let grid = rng.usize(1, 10_000);
        let dev = DeviceSpec::v100();
        let calib = GpuCalib::default();
        let occ = occupancy(
            &dev,
            &KernelResources {
                regs_per_thread: 32,
                smem_per_block: 0,
                threads_per_block: 256,
            },
        );
        let base = Counters {
            global_read_bytes: bytes,
            lane_flops: flops,
            launches: 1,
            ..Default::default()
        };
        let t0 = gpu_time(&dev, &calib, &base, &occ, grid, KernelClass::Generic);
        let mut more = base;
        more.global_read_bytes *= 2;
        more.lane_flops *= 2;
        more.shuffles = 1000;
        let t1 = gpu_time(&dev, &calib, &more, &occ, grid, KernelClass::Generic);
        assert!(t1.total_s >= t0.total_s, "case {case}");
        assert!(t0.total_s > 0.0 && t0.total_s.is_finite(), "case {case}");
    }
}

#[test]
fn cpu_time_is_monotone() {
    let mut rng = Rng(0xc70);
    for case in 0..256 {
        let ops = rng.u64r(1, 1 << 36);
        let passes = rng.u64r(1, 64);
        let cpu = CpuModel::xeon_6148();
        let mk = |o: u64, p: u64| {
            cpu.time(&Counters {
                lane_flops: o,
                global_read_bytes: o / 2,
                launches: p,
                ..Default::default()
            })
            .total_s
        };
        assert!(mk(ops * 2, passes) >= mk(ops, passes), "case {case}");
        assert!(mk(ops, passes + 1) >= mk(ops, passes), "case {case}");
    }
}
