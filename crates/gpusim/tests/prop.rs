//! Property-based tests for the simulator primitives: shuffle semantics,
//! occupancy arithmetic and cost-model monotonicity.

use proptest::prelude::*;
use zc_gpusim::cost::{gpu_time, CpuModel, GpuCalib};
use zc_gpusim::{occupancy, Counters, DeviceSpec, KernelClass, KernelResources, Lanes, WARP};

fn lanes() -> impl Strategy<Value = Lanes<f32>> {
    proptest::collection::vec(-1.0e6f32..1.0e6, WARP)
        .prop_map(|v| Lanes::from_fn(|i| v[i]))
}

proptest! {
    #[test]
    fn shfl_xor_is_involutive(l in lanes(), m in 1usize..32) {
        let twice = l.shfl_xor(u32::MAX, m).shfl_xor(u32::MAX, m);
        prop_assert_eq!(twice, l);
    }

    #[test]
    fn shfl_down_then_up_restores_interior(l in lanes(), d in 1usize..16) {
        // For lanes in [d, 32-d), down(d) moves lane i+d into i; up(d)
        // moves it back.
        let roundtrip = l.shfl_down(u32::MAX, d).shfl_up(u32::MAX, d);
        for i in d..(WARP - d) {
            prop_assert_eq!(roundtrip.lane(i), l.lane(i));
        }
    }

    #[test]
    fn shuffle_reduction_tree_sums_all_lanes(l in lanes()) {
        // f64 butterfly: exact (no fp reordering issues at f64 for 32 f32s).
        let mut acc = l.map(|v| v as f64);
        let mut offset = WARP / 2;
        while offset > 0 {
            let sh = acc.shfl_down(u32::MAX, offset);
            acc = acc.zip_with(&sh, |a, b| a + b);
            offset /= 2;
        }
        let direct: f64 = (0..WARP).map(|i| l.lane(i) as f64).sum();
        prop_assert!((acc.lane(0) - direct).abs() <= 1e-9 * direct.abs().max(1.0));
    }

    #[test]
    fn occupancy_never_exceeds_hardware_limits(
        regs in 1u32..256,
        smem in 0u32..(96 * 1024),
        threads in 32u32..1025,
    ) {
        let dev = DeviceSpec::v100();
        let res = KernelResources {
            regs_per_thread: regs,
            smem_per_block: smem,
            threads_per_block: threads,
        };
        let occ = occupancy(&dev, &res);
        prop_assert!(occ.blocks_per_sm <= dev.max_blocks_per_sm);
        prop_assert!(occ.blocks_per_sm * threads <= dev.max_threads_per_sm + threads);
        prop_assert!(occ.fraction <= 1.0 + 1e-12);
        // Resource accounting: the resident blocks actually fit.
        if occ.blocks_per_sm > 0 {
            prop_assert!(occ.blocks_per_sm * res.regs_per_block() <= dev.regs_per_sm);
            prop_assert!(occ.blocks_per_sm * smem <= dev.smem_per_sm);
        }
    }

    #[test]
    fn more_registers_never_increase_occupancy(
        regs in 8u32..128,
        threads_pow in 5u32..11,
    ) {
        let dev = DeviceSpec::v100();
        let threads = 1u32 << threads_pow;
        let mk = |r| occupancy(&dev, &KernelResources {
            regs_per_thread: r,
            smem_per_block: 0,
            threads_per_block: threads,
        });
        prop_assert!(mk(regs + 8).blocks_per_sm <= mk(regs).blocks_per_sm);
    }

    #[test]
    fn gpu_time_is_monotone_in_every_counter(
        bytes in 1u64..1 << 32,
        flops in 1u64..1 << 34,
        grid in 1usize..10_000,
    ) {
        let dev = DeviceSpec::v100();
        let calib = GpuCalib::default();
        let occ = occupancy(&dev, &KernelResources {
            regs_per_thread: 32,
            smem_per_block: 0,
            threads_per_block: 256,
        });
        let base = Counters {
            global_read_bytes: bytes,
            lane_flops: flops,
            launches: 1,
            ..Default::default()
        };
        let t0 = gpu_time(&dev, &calib, &base, &occ, grid, KernelClass::Generic);
        let mut more = base;
        more.global_read_bytes *= 2;
        more.lane_flops *= 2;
        more.shuffles = 1000;
        let t1 = gpu_time(&dev, &calib, &more, &occ, grid, KernelClass::Generic);
        prop_assert!(t1.total_s >= t0.total_s);
        prop_assert!(t0.total_s > 0.0 && t0.total_s.is_finite());
    }

    #[test]
    fn cpu_time_is_monotone(ops in 1u64..1 << 36, passes in 1u64..64) {
        let cpu = CpuModel::xeon_6148();
        let mk = |o: u64, p: u64| cpu.time(&Counters {
            lane_flops: o,
            global_read_bytes: o / 2,
            launches: p,
            ..Default::default()
        }).total_s;
        prop_assert!(mk(ops * 2, passes) >= mk(ops, passes));
        prop_assert!(mk(ops, passes + 1) >= mk(ops, passes));
    }
}
