//! Time-series assessment: compress each snapshot of an evolving field and
//! track quality across time — the in-situ monitoring loop a simulation
//! would run cuZ-Checker in (the paper's GPU-resident motivation).
//!
//! ```text
//! cargo run --release --example timeseries_drift
//! ```

use cuz_checker::compress::{Compressor, CompressorSpec, ErrorBound, SzCompressor};
use cuz_checker::core::campaign::{CampaignSpec, FieldRef, FleetSpec, RecoveryPolicy, Scheduler};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::Executor;
use cuz_checker::core::{CuZc, Metric};
use cuz_checker::data::{AppDataset, GenOptions};
use cuz_checker::tensor::{Shape, Tensor};

fn main() {
    let steps = 8;
    let series = AppDataset::Hurricane.generate_timeseries(9, steps, &GenOptions::scaled(8)); // TC
    let s = series.data.shape();
    println!(
        "Hurricane {} time series: {} snapshots of {}x{}x{}\n",
        series.name,
        steps,
        s.nx(),
        s.ny(),
        s.nz()
    );
    let sz = SzCompressor::new(ErrorBound::Rel(1e-3));
    let cuzc = CuZc::default();
    let cfg = AssessConfig::default();
    let slab3 = s.nx() * s.ny() * s.nz();
    let shape3 = Shape::d3(s.nx(), s.ny(), s.nz());

    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>12}",
        "step", "ratio", "PSNR(dB)", "SSIM", "autocorr(1)"
    );
    for t in 0..steps {
        let snap = Tensor::from_vec(
            shape3,
            series.data.as_slice()[t * slab3..(t + 1) * slab3].to_vec(),
        )
        .expect("snapshot slice");
        let (dec, stats) = sz.roundtrip(&snap).expect("roundtrip");
        let a = cuzc.assess(&snap, &dec, &cfg).expect("assess");
        println!(
            "{t:>5} {:>7.1}x {:>10.2} {:>10.6} {:>12.5}",
            stats.ratio(),
            a.report.scalar(Metric::Psnr).unwrap(),
            a.report.scalar(Metric::Ssim).unwrap(),
            a.report.scalar(Metric::Autocorrelation).unwrap(),
        );
    }
    println!("\nsteady per-step quality = the compressor config can be trusted in-situ;");
    println!("a drifting row would flag a regime change worth re-tuning the bound for.");

    // The same series as one *campaign job*: `FieldRef::timeseries` makes
    // the whole evolution a single (8× oversized) field next to ordinary
    // snapshots — exactly the size skew the cost-model list scheduler
    // exists for. Round-robin pins the hog to one device group; `list`
    // splits it along its slabs and levels the fleet.
    println!("\n-- as a campaign (the series is one 8-step job) --");
    let spec = |scheduler| CampaignSpec {
        fields: vec![
            FieldRef::timeseries(AppDataset::Hurricane, 9, GenOptions::scaled(8), steps),
            FieldRef::new(AppDataset::Hurricane, 5, GenOptions::scaled(8)), // QVAPOR
            FieldRef::new(AppDataset::Nyx, 2, GenOptions::scaled(16)),
        ],
        compressors: vec![CompressorSpec::Sz(ErrorBound::Rel(1e-3))],
        cfg: AssessConfig {
            max_lag: 3,
            bins: 32,
            // Slab tiling makes the oversized series splittable: the list
            // scheduler can spread its slabs across idle groups.
            tiling: cuz_checker::core::TilingPolicy::Slabs(8),
            ..Default::default()
        },
        fleet: FleetSpec::nvlink(4),
        scheduler,
        progressive: None,
        recovery: RecoveryPolicy::default(),
    };
    for scheduler in [Scheduler::RoundRobin, Scheduler::List] {
        let report = spec(scheduler).run().expect("campaign");
        let f = &report.fleet;
        println!(
            "{:>11}: makespan {:.5} s | utilization {:>5.1}%",
            scheduler.label(),
            f.makespan_s,
            f.utilization * 100.0
        );
    }
}
