//! Multi-GPU assessment (§VI future work): the same field assessed on
//! 1–8 modeled V100s, values identical, time scaling reported.
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::{Executor, MultiCuZc};
use cuz_checker::core::Metric;
use cuz_checker::data::{AppDataset, GenOptions};

fn main() {
    let field = AppDataset::Nyx.generate_field(0, &GenOptions::scaled(8));
    let sz = SzCompressor::new(ErrorBound::Rel(1e-3));
    let (dec, _) = sz.roundtrip(&field.data).unwrap();
    let cfg = AssessConfig::default();

    println!(
        "NYX {} at 1/8 scale — multi-GPU cuZC (NVLink)\n",
        field.name
    );
    println!(
        "{:>5} {:>12} {:>10} {:>12} {:>14}",
        "GPUs", "modeled (s)", "speedup", "efficiency", "PSNR (check)"
    );
    let base = MultiCuZc::nvlink(1)
        .assess(&field.data, &dec, &cfg)
        .unwrap();
    let t1 = base.modeled_seconds;
    for gpus in [1u32, 2, 4, 8] {
        let a = MultiCuZc::nvlink(gpus)
            .assess(&field.data, &dec, &cfg)
            .unwrap();
        // Functional identity across device counts.
        assert_eq!(
            a.report.scalar(Metric::Psnr),
            base.report.scalar(Metric::Psnr)
        );
        let speedup = t1 / a.modeled_seconds;
        println!(
            "{gpus:>5} {:>12.5} {:>9.2}x {:>11.1}% {:>14.6}",
            a.modeled_seconds,
            speedup,
            speedup / gpus as f64 * 100.0,
            a.report.scalar(Metric::Psnr).unwrap()
        );
    }
    println!("\nvalues are identical on every device count (asserted above);");
    println!("only the modeled time changes — the paper's §VI design point.");
}
