//! Spectrum-controlled assessment: synthesize Gaussian random fields with
//! prescribed power spectra and see how the spectral slope changes both
//! compressibility and the *structure* of compression errors — the kind of
//! study cuZ-Checker's derivative/autocorrelation metrics exist for.
//!
//! ```text
//! cargo run --release --example spectral_scales
//! ```

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::Executor;
use cuz_checker::core::{CuZc, Metric};
use cuz_checker::data::{gaussian_random_field, GrfSpec};
use cuz_checker::tensor::Shape;

fn main() {
    let shape = Shape::d3(64, 64, 48);
    let sz = SzCompressor::new(ErrorBound::Rel(1e-3));
    let cfg = AssessConfig::default();

    println!("Gaussian random fields, P(k) ∝ k^α, shape {shape}\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "α", "ratio", "PSNR(dB)", "SSIM", "autocorr(1)", "avg|∇|"
    );
    for alpha in [-1.0, -2.0, -11.0 / 3.0, -5.0] {
        let field = gaussian_random_field(
            &GrfSpec {
                seed: 77,
                alpha,
                k_min: 1.0,
            },
            shape,
        );
        let (dec, stats) = sz.roundtrip(&field).unwrap();
        let a = CuZc::default().assess(&field, &dec, &cfg).unwrap();
        println!(
            "{alpha:>6.2} {:>7.1}x {:>10.2} {:>10.6} {:>12.5} {:>12.5}",
            stats.ratio(),
            a.report.scalar(Metric::Psnr).unwrap(),
            a.report.scalar(Metric::Ssim).unwrap(),
            a.report.scalar(Metric::Autocorrelation).unwrap(),
            a.report.stencil.as_ref().unwrap().avg_gradient_orig,
        );
    }
    println!("\nreading: steeper spectra (more negative α) are smoother fields —");
    println!("the Lorenzo predictor captures them better (higher ratio at the same");
    println!("relative bound) and the residual errors lose spatial correlation.");
}
