//! Rate–distortion shootout: the SZ-like error-bounded compressor against
//! the ZFP-like fixed-rate compressor on a NYX-like cosmology field —
//! reproducing the paper's §I motivation that fixed-rate mode trades
//! substantial quality for GPU-friendliness (2–3× lower ratio at equal
//! PSNR, per the FRaZ measurements the paper cites).
//!
//! ```text
//! cargo run --release --example compressor_shootout
//! ```

use cuz_checker::compress::{
    BitGroomCompressor, Compressor, ErrorBound, LosslessCompressor, RateSummary, SzCompressor,
    ZfpLikeCompressor,
};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::Executor;
use cuz_checker::core::metrics::{Metric, MetricSelection, Pattern};
use cuz_checker::core::SerialZc;
use cuz_checker::data::{AppDataset, GenOptions};
use cuz_checker::tensor::Tensor;

fn assess_psnr_ssim(orig: &Tensor<f32>, dec: &Tensor<f32>) -> (f64, f64) {
    let cfg = AssessConfig {
        metrics: MetricSelection::pattern(Pattern::GlobalReduction).with(Metric::Ssim),
        ..Default::default()
    };
    let a = SerialZc.assess(orig, dec, &cfg).expect("assess");
    (
        a.report.scalar(Metric::Psnr).unwrap(),
        a.report.scalar(Metric::Ssim).unwrap_or(f64::NAN),
    )
}

fn main() {
    let field = AppDataset::Nyx.generate_field(2, &GenOptions::scaled(8));
    println!(
        "dataset: NYX {} at 1/8 scale ({} elements)\n",
        field.name,
        field.data.len()
    );

    let mut summary = RateSummary::default();

    for rel in [1e-2, 1e-3, 1e-4, 1e-5] {
        let sz = SzCompressor::new(ErrorBound::Rel(rel));
        let (dec, stats) = sz.roundtrip(&field.data).expect("sz roundtrip");
        let (psnr, ssim) = assess_psnr_ssim(&field.data, &dec);
        summary.push(
            format!("sz-like rel={rel:.0e}"),
            stats.bit_rate(4),
            psnr,
            stats.ratio(),
        );
        println!("sz-like  rel={rel:<8.0e} ssim={ssim:.6}");
    }
    for rate in [4.0, 8.0, 12.0, 16.0] {
        let zfp = ZfpLikeCompressor::new(rate);
        let (dec, stats) = zfp.roundtrip(&field.data).expect("zfp roundtrip");
        let (psnr, ssim) = assess_psnr_ssim(&field.data, &dec);
        summary.push(
            format!("zfp-like rate={rate}"),
            stats.bit_rate(4),
            psnr,
            stats.ratio(),
        );
        println!("zfp-like rate={rate:<7} ssim={ssim:.6}");
    }

    for keep in [6u32, 10, 14] {
        let bg = BitGroomCompressor::new(keep);
        let (dec, stats) = bg.roundtrip(&field.data).expect("bitgroom roundtrip");
        let (psnr, ssim) = assess_psnr_ssim(&field.data, &dec);
        summary.push(
            format!("bitgroom keep={keep}"),
            stats.bit_rate(4),
            psnr,
            stats.ratio(),
        );
        println!("bitgroom keep={keep:<5} ssim={ssim:.6}");
    }

    // The lossless baseline the paper's introduction cites (~2:1).
    let lossless = LosslessCompressor::new();
    let (dec, stats) = lossless.roundtrip(&field.data).expect("lossless roundtrip");
    assert_eq!(dec.as_slice(), field.data.as_slice());
    summary.push(
        "lossless-huff",
        stats.bit_rate(4),
        f64::INFINITY,
        stats.ratio(),
    );

    println!("\n{}", summary.to_table());
    println!("reading: at matched PSNR the error-bounded codec needs fewer bits/value —");
    println!("the compression-quality gap that motivates assessing GPU compressors at all.");
}
