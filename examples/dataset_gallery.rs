//! Fig. 9 — dataset visualization: write a PGM image of a representative
//! mid-depth slice of one field from each of the four applications.
//!
//! ```text
//! cargo run --release --example dataset_gallery
//! # images land in ./gallery/
//! ```

use cuz_checker::core::io::write_pgm_slice;
use cuz_checker::data::{AppDataset, GenOptions};
use std::path::PathBuf;

fn main() {
    let out_dir = PathBuf::from("gallery");
    std::fs::create_dir_all(&out_dir).expect("create gallery dir");
    // Representative fields, mirroring the paper's Fig. 9 picks.
    let picks = [
        (AppDataset::Hurricane, 5usize), // QVAPOR
        (AppDataset::Nyx, 0),            // baryon_density
        (AppDataset::ScaleLetkf, 3),     // QR (rain)
        (AppDataset::Miranda, 0),        // density
        (AppDataset::CesmAtm, 0),        // CLDHGH (2D bonus)
    ];
    for (ds, idx) in picks {
        let field = ds.generate_field(idx, &GenOptions::scaled(4));
        let z = field.data.shape().nz() / 2;
        let path = out_dir.join(format!(
            "{}_{}.pgm",
            ds.name().to_lowercase().replace('-', "_"),
            field.name.to_lowercase()
        ));
        write_pgm_slice(&path, &field.data, z).expect("write pgm");
        println!(
            "{:<12} {:<20} slice z={z:<4} {} -> {}",
            ds.name(),
            field.name,
            field.data.shape(),
            path.display()
        );
    }
    println!("\nview with any PGM-capable viewer (or `magick x.pgm x.png`).");
}
