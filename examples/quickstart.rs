//! Quickstart: generate a scientific field, compress it with the SZ-like
//! error-bounded compressor, and assess the result with cuZ-Checker.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::Executor;
use cuz_checker::core::{CuZc, Metric, MetricSelection};
use cuz_checker::data::{AppDataset, GenOptions};

fn main() {
    // 1. A Miranda-like turbulence field at 1/8 scale per axis.
    let field = AppDataset::Miranda.generate_field(0, &GenOptions::scaled(8));
    println!(
        "field: {} {} ({} elements, {:.1} MB)",
        AppDataset::Miranda.name(),
        field.name,
        field.data.len(),
        field.data.nbytes() as f64 / 1e6
    );

    // 2. Compress with a value-range-relative error bound of 1e-3.
    let sz = SzCompressor::new(ErrorBound::Rel(1e-3));
    let (decompressed, stats) = sz.roundtrip(&field.data).expect("compression roundtrip");
    println!(
        "compressed {:.1} KB -> {:.1} KB (ratio {:.1}x, {:.2} bits/value)",
        stats.original_bytes as f64 / 1e3,
        stats.compressed_bytes as f64 / 1e3,
        stats.ratio(),
        stats.bit_rate(4)
    );

    // 3. Assess with the pattern-oriented GPU executor (simulated V100).
    let cfg = AssessConfig::default();
    let result = CuZc::default()
        .assess(&field.data, &decompressed, &cfg)
        .expect("assessment");

    // 4. Report.
    println!("\n--- analysis report ---");
    print!("{}", result.report.render(&MetricSelection::all()));
    println!("\nheadline metrics:");
    for m in [
        Metric::Psnr,
        Metric::Nrmse,
        Metric::Ssim,
        Metric::PearsonCorrelation,
    ] {
        println!(
            "  {:<10} = {:.6}",
            m.key(),
            result.report.scalar(m).unwrap()
        );
    }
    println!(
        "\nmodeled V100 assessment time: {:.3} ms ({} kernel launches, {} grid syncs)",
        result.modeled_seconds * 1e3,
        result.counters.launches,
        result.counters.grid_syncs
    );
}
