//! Configuration-driven run: the Z-checker workflow — a `.cfg` document
//! selects the compressor, the executor and the metric set; the raw field
//! round-trips through the input/output engines on disk.
//!
//! ```text
//! cargo run --release --example config_driven
//! ```

use cuz_checker::compress::{
    BitGroomCompressor, Compressor, LosslessCompressor, SzCompressor, ZfpLikeCompressor,
};
use cuz_checker::core::config::{parse, CompressorChoice};
use cuz_checker::core::exec::make_executor;
use cuz_checker::core::io::{read_raw, write_raw, Endianness};
use cuz_checker::data::{AppDataset, GenOptions};
use cuz_checker::tensor::Tensor;

const CONFIG: &str = r#"
# cuZ-Checker run configuration (Z-checker ini dialect)
[assess]
executor = cuzc
metrics  = all
bins     = 128
max_lag  = 5

[ssim]
window = 8
step   = 1

[compressor]
kind      = sz
rel_bound = 1e-3
"#;

fn main() {
    let run = parse(CONFIG).expect("config parses");
    println!(
        "executor: {:?}   compressor: {:?}",
        run.executor, run.compressor
    );

    // Input engine: write the field to a raw binary file and read it back,
    // exactly how real SDRBench data enters the tool.
    let field = AppDataset::ScaleLetkf.generate_field(5, &GenOptions::scaled(8));
    let path = std::env::temp_dir().join("cuz_checker_demo_field.f32");
    write_raw(&path, &field.data, Endianness::Little).expect("write raw");
    let orig: Tensor<f32> =
        read_raw(&path, field.data.shape(), Endianness::Little).expect("read raw");
    println!("loaded {} from {}", orig.shape(), path.display());

    // Run the configured compressor.
    let (dec, stats) = match run.compressor.expect("config names a compressor") {
        CompressorChoice::Sz(bound) => SzCompressor::new(bound)
            .roundtrip(&orig)
            .expect("sz roundtrip"),
        CompressorChoice::Zfp(rate) => ZfpLikeCompressor::new(rate)
            .roundtrip(&orig)
            .expect("zfp roundtrip"),
        CompressorChoice::BitGroom(keep) => BitGroomCompressor::new(keep)
            .roundtrip(&orig)
            .expect("bitgroom roundtrip"),
        CompressorChoice::Lossless => LosslessCompressor::new()
            .roundtrip(&orig)
            .expect("lossless roundtrip"),
    };
    println!("compression ratio: {:.1}x", stats.ratio());

    // Run the configured executor and render the configured metrics.
    let executor = make_executor(run.executor);
    let mut a = executor.assess(&orig, &dec, &run.assess).expect("assess");
    a.report = a.report.with_compression(stats);
    print!("\n{}", a.report.render(&run.assess.metrics));
    std::fs::remove_file(&path).ok();
}
