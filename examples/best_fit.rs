//! Best-fit compressor selection: sweep candidate configurations over a
//! field, enforce quality criteria, rank the survivors by ratio — the
//! paper's §I "select the best-fit compressors" workflow, automated.
//!
//! ```text
//! cargo run --release --example best_fit
//! ```

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor, ZfpLikeCompressor};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::recommend::{recommend, render_ranking, QualityCriteria};
use cuz_checker::core::CuZc;
use cuz_checker::data::{AppDataset, GenOptions};

fn main() {
    let field = AppDataset::Hurricane.generate_field(9, &GenOptions::scaled(8)); // TC
    println!("field: Hurricane {} at 1/8 scale\n", field.name);

    let sz2 = SzCompressor::new(ErrorBound::Rel(1e-2));
    let sz3 = SzCompressor::new(ErrorBound::Rel(1e-3));
    let sz4 = SzCompressor::new(ErrorBound::Rel(1e-4));
    let zfp8 = ZfpLikeCompressor::new(8.0);
    let zfp12 = ZfpLikeCompressor::new(12.0);
    let zfp16 = ZfpLikeCompressor::new(16.0);
    let candidates: Vec<(&str, &dyn Compressor)> = vec![
        ("sz-like rel=1e-2", &sz2),
        ("sz-like rel=1e-3", &sz3),
        ("sz-like rel=1e-4", &sz4),
        ("zfp-like rate=8", &zfp8),
        ("zfp-like rate=12", &zfp12),
        ("zfp-like rate=16", &zfp16),
    ];

    for (label, criteria) in [
        (
            "visualization-grade (PSNR ≥ 60 dB, SSIM ≥ 0.99)",
            QualityCriteria::visualization(),
        ),
        (
            "analysis-grade (PSNR ≥ 80 dB, SSIM ≥ 0.999, white errors)",
            QualityCriteria::analysis(),
        ),
    ] {
        println!("criteria: {label}");
        let ranking = recommend(
            &field.data,
            &candidates,
            &criteria,
            &AssessConfig::default(),
            &CuZc::default(),
        )
        .expect("recommendation pipeline");
        print!("{}", render_ranking(&ranking));
        match ranking.iter().find(|v| v.passes) {
            Some(best) => println!("→ best fit: {} at {:.1}x\n", best.name, best.ratio),
            None => println!("→ no candidate satisfies the criteria\n"),
        }
    }
}
