//! All four executors on the same Hurricane-like field: verify they agree
//! on every metric value (the paper's §IV-B correctness check) and compare
//! their modeled platform times (a miniature Fig. 10 + Table II).
//!
//! ```text
//! cargo run --release --example gpu_vs_cpu
//! ```

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::{Assessment, Executor};
use cuz_checker::core::{CuZc, Metric, MoZc, OmpZc, SerialZc};
use cuz_checker::data::{AppDataset, GenOptions};

fn main() {
    let field = AppDataset::Hurricane.generate_field(10, &GenOptions::scaled(8)); // "U" wind
    let sz = SzCompressor::new(ErrorBound::Rel(1e-3));
    let (dec, _) = sz.roundtrip(&field.data).expect("compress");
    let cfg = AssessConfig::default();

    let executors: Vec<(&str, Assessment)> = vec![
        ("serial", SerialZc.assess(&field.data, &dec, &cfg).unwrap()),
        (
            "ompZC",
            OmpZc::default().assess(&field.data, &dec, &cfg).unwrap(),
        ),
        (
            "moZC",
            MoZc::default().assess(&field.data, &dec, &cfg).unwrap(),
        ),
        (
            "cuZC",
            CuZc::default().assess(&field.data, &dec, &cfg).unwrap(),
        ),
    ];

    // Metric agreement across executors.
    println!("metric agreement (field {} at 1/8 scale):", field.name);
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "executor", "PSNR(dB)", "SSIM", "autocorr(1)", "avg|e|"
    );
    for (name, a) in &executors {
        println!(
            "{name:<12} {:>14.8} {:>14.10} {:>12.8} {:>12.6e}",
            a.report.scalar(Metric::Psnr).unwrap(),
            a.report.scalar(Metric::Ssim).unwrap(),
            a.report.scalar(Metric::Autocorrelation).unwrap(),
            a.report.scalar(Metric::AvgError).unwrap(),
        );
    }

    // Modeled platform times (CPU model for ompZC, V100 model for *ZC).
    println!("\nmodeled platform time at this (reduced) size:");
    for (name, a) in &executors[1..] {
        println!(
            "{name:<12} p1={:.3e}s p2={:.3e}s p3={:.3e}s total={:.3e}s (wall {:.0} ms)",
            a.pattern_times.p1,
            a.pattern_times.p2,
            a.pattern_times.p3,
            a.modeled_seconds,
            a.wall_seconds * 1e3,
        );
    }
    let omp = executors[1].1.modeled_seconds;
    let cu = executors[3].1.modeled_seconds;
    println!("\ncuZC speedup over ompZC at this size: {:.1}x", omp / cu);

    // Table-II style profile of the cuZC run.
    println!("\ncuZC launch profile:");
    for p in &executors[3].1.profiles {
        println!(
            "  {:<18} Regs/TB={:<6} SMem/TB={:<6} Iters/thread={:<6} conc TB/SM={}",
            format!("{:?}", p.pattern),
            p.regs_per_tb,
            p.smem_per_tb,
            p.iters_per_thread,
            p.blocks_per_sm
        );
    }
}
