//! Error whiteness: use the autocorrelation metric to test whether a
//! compressor's errors look like white noise — the §III-B2 use case
//! ("particularly useful for applications that require the compression
//! errors to be uncorrelated").
//!
//! ```text
//! cargo run --release --example error_whiteness
//! ```

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor, ZfpLikeCompressor};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::Executor;
use cuz_checker::core::metrics::{MetricSelection, Pattern};
use cuz_checker::core::output::autocorr_csv;
use cuz_checker::core::CuZc;
use cuz_checker::data::{AppDataset, GenOptions};
use cuz_checker::tensor::Tensor;

fn autocorr_of(orig: &Tensor<f32>, dec: &Tensor<f32>) -> Vec<f64> {
    let cfg = AssessConfig {
        metrics: MetricSelection::pattern(Pattern::Stencil),
        max_lag: 10,
        ..Default::default()
    };
    let a = CuZc::default().assess(orig, dec, &cfg).expect("assess");
    a.report.stencil.unwrap().autocorr.values
}

fn main() {
    let field = AppDataset::Miranda.generate_field(3, &GenOptions::scaled(8)); // velocityx
    println!(
        "error autocorrelation, {} velocityx (lags 1..10)\n",
        AppDataset::Miranda.name()
    );

    let sz = SzCompressor::new(ErrorBound::Rel(1e-3));
    let (dec_sz, _) = sz.roundtrip(&field.data).unwrap();
    let ac_sz = autocorr_of(&field.data, &dec_sz);

    let zfp = ZfpLikeCompressor::new(8.0);
    let (dec_zfp, _) = zfp.roundtrip(&field.data).unwrap();
    let ac_zfp = autocorr_of(&field.data, &dec_zfp);

    println!("{:<6} {:>12} {:>12}", "lag", "sz-like", "zfp-like");
    for lag in 0..10 {
        println!("{:<6} {:>12.5} {:>12.5}", lag + 1, ac_sz[lag], ac_zfp[lag]);
    }

    let verdict = |ac: &[f64]| {
        if ac.iter().all(|v| v.abs() < 0.2) {
            "≈ white noise"
        } else {
            "spatially correlated"
        }
    };
    println!("\nsz-like errors:  {}", verdict(&ac_sz));
    println!("zfp-like errors: {}", verdict(&ac_zfp));
    println!("\nCSV (sz-like):\n{}", autocorr_csv(&ac_sz));
}
