//! End-to-end pipelines: generate → (disk) → compress → assess → report,
//! exercising the whole public surface the way a downstream user would.

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor, ZfpLikeCompressor};
use cuz_checker::core::config::{parse, AssessConfig, CompressorChoice, ExecutorKind};
use cuz_checker::core::exec::{make_executor, Executor};
use cuz_checker::core::io::{read_raw, write_raw, Endianness};
use cuz_checker::core::output::{histogram_csv, scalars_csv};
use cuz_checker::core::{CuZc, Metric, MetricSelection};
use cuz_checker::data::{AppDataset, GenOptions};
use cuz_checker::tensor::Tensor;

#[test]
fn sz_pipeline_bound_is_visible_in_the_assessment() {
    // The assessment itself must confirm the compressor's contract:
    // max |error| <= eb, and PSNR >= 20·log10(range/(2·eb)).
    let field = AppDataset::Miranda.generate_field(2, &GenOptions::scaled(16));
    let (mn, mx) = field.data.min_max().unwrap();
    let range = (mx - mn) as f64;
    let rel = 1e-3;
    let sz = SzCompressor::new(ErrorBound::Rel(rel));
    let (dec, stats) = sz.roundtrip(&field.data).unwrap();
    assert!(stats.ratio() > 1.0);

    let a = CuZc::default()
        .assess(&field.data, &dec, &AssessConfig::default())
        .unwrap();
    let max_abs = a.report.scalar(Metric::MaxAbsError).unwrap();
    assert!(
        max_abs <= rel * range * (1.0 + 1e-6),
        "bound violated: {max_abs}"
    );
    let psnr = a.report.scalar(Metric::Psnr).unwrap();
    let floor = 20.0 * (1.0 / (2.0 * rel)).log10();
    assert!(psnr >= floor, "psnr {psnr} below worst-case floor {floor}");
}

#[test]
fn zfp_pipeline_degrades_gracefully_with_rate() {
    let field = AppDataset::Hurricane.generate_field(9, &GenOptions::scaled(16));
    let cfg = AssessConfig::default();
    let mut last_psnr = f64::NEG_INFINITY;
    for rate in [4.0, 10.0, 16.0] {
        let zfp = ZfpLikeCompressor::new(rate);
        let (dec, stats) = zfp.roundtrip(&field.data).unwrap();
        let a = CuZc::default().assess(&field.data, &dec, &cfg).unwrap();
        let psnr = a.report.scalar(Metric::Psnr).unwrap();
        assert!(psnr > last_psnr, "rate {rate}: psnr {psnr} <= {last_psnr}");
        last_psnr = psnr;
        // Fixed rate: the measured bit rate tracks the requested one, up to
        // the 16-bit per-block exponent header and edge-block padding
        // (this shape is not a multiple of 4 on every axis).
        let br = stats.bit_rate(4);
        assert!(
            br >= rate && br <= rate * 1.6 + 1.0,
            "bit rate {br} for rate {rate}"
        );
    }
}

#[test]
fn disk_roundtrip_preserves_assessment_exactly() {
    let field = AppDataset::ScaleLetkf.generate_field(0, &GenOptions::scaled(16));
    let dir = std::env::temp_dir();
    let path = dir.join(format!("zc_e2e_{}.f32", std::process::id()));
    write_raw(&path, &field.data, Endianness::Big).unwrap();
    let loaded: Tensor<f32> = read_raw(&path, field.data.shape(), Endianness::Big).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.as_slice(), field.data.as_slice());

    let sz = SzCompressor::new(ErrorBound::Abs(1e-4));
    let (dec, _) = sz.roundtrip(&loaded).unwrap();
    let cfg = AssessConfig::default();
    let from_disk = CuZc::default().assess(&loaded, &dec, &cfg).unwrap();
    let from_mem = CuZc::default().assess(&field.data, &dec, &cfg).unwrap();
    assert_eq!(
        from_disk.report.scalar(Metric::Psnr),
        from_mem.report.scalar(Metric::Psnr)
    );
}

#[test]
fn config_document_drives_the_full_run() {
    let doc = r#"
        [assess]
        executor = mozc
        metrics  = psnr, ssim, autocorr, err_pdf
        bins     = 64
        max_lag  = 3
        [compressor]
        kind      = zfp
        rate      = 12
    "#;
    let run = parse(doc).unwrap();
    assert_eq!(run.executor, ExecutorKind::MoZc);
    let field = AppDataset::Nyx.generate_field(3, &GenOptions::scaled(16));
    let (dec, stats) = match run.compressor.unwrap() {
        CompressorChoice::Zfp(rate) => ZfpLikeCompressor::new(rate).roundtrip(&field.data).unwrap(),
        CompressorChoice::Sz(b) => SzCompressor::new(b).roundtrip(&field.data).unwrap(),
        other => panic!("unexpected compressor {other:?}"),
    };
    let ex = make_executor(run.executor);
    let mut a = ex.assess(&field.data, &dec, &run.assess).unwrap();
    a.report = a.report.with_compression(stats);

    // The configured metrics appear in the outputs; others do not.
    let csv = scalars_csv(&a, &run.assess.metrics);
    assert!(csv.contains("psnr,"));
    assert!(csv.contains("ssim,"));
    assert!(!csv.contains("pearson,"));
    let h = a.report.histograms.as_ref().unwrap();
    assert_eq!(h.err_pdf.bin_count(), 64);
    let hist_csv = histogram_csv(&h.err_pdf);
    assert_eq!(hist_csv.lines().count(), 65);
    // Compression metrics attached.
    assert!(a.report.scalar(Metric::CompressionRatio).unwrap() > 1.0);
}

#[test]
fn four_dimensional_fields_assess_end_to_end() {
    use cuz_checker::tensor::Shape;
    // 4D (e.g. time-series of 3D states): pattern-1 handles the whole
    // hyper-volume, stencil/SSIM run per 3D sub-volume.
    let t = Tensor::from_fn(Shape::d4(24, 20, 12, 3), |[x, y, z, w]| {
        (x as f32 * 0.3).sin() + (y as f32 * 0.2).cos() + z as f32 * 0.01 + w as f32
    });
    let sz = SzCompressor::new(ErrorBound::Abs(1e-3));
    let (dec, _) = sz.roundtrip(&t).unwrap();
    let a = CuZc::default()
        .assess(&t, &dec, &AssessConfig::default())
        .unwrap();
    assert!(a.report.scalar(Metric::Psnr).unwrap() > 40.0);
    assert!(a.report.ssim.unwrap().windows > 0);
}

#[test]
fn one_and_two_dimensional_fields_assess_end_to_end() {
    use cuz_checker::tensor::Shape;
    let cfg = AssessConfig::default();
    for shape in [Shape::d1(4096), Shape::d2(96, 80)] {
        let t = Tensor::from_fn(shape, |[x, y, ..]| {
            (x as f32 * 0.05).sin() + y as f32 * 0.01
        });
        let sz = SzCompressor::new(ErrorBound::Abs(1e-4));
        let (dec, _) = sz.roundtrip(&t).unwrap();
        let mut c = cfg.clone();
        c.metrics = MetricSelection::all();
        let a = CuZc::default().assess(&t, &dec, &c).unwrap();
        assert!(a.report.scalar(Metric::Psnr).unwrap() > 40.0, "{shape:?}");
    }
}

#[test]
fn empty_metric_selection_is_effectively_a_noop_run() {
    use cuz_checker::core::metrics::MetricSelection;
    use cuz_checker::tensor::Shape;
    let t = Tensor::from_fn(Shape::d3(16, 16, 8), |[x, ..]| x as f32);
    let dec = t.map(|v| v + 1e-3);
    let cfg = AssessConfig {
        metrics: MetricSelection::none(),
        ..Default::default()
    };
    let a = CuZc::default().assess(&t, &dec, &cfg).unwrap();
    // The scalar pass always runs (it feeds everything else), but no
    // histograms, stencil, or SSIM work happens.
    assert!(a.report.histograms.is_none());
    assert!(a.report.stencil.is_none());
    assert!(a.report.ssim.is_none());
    assert_eq!(a.pattern_times.p2, 0.0);
    assert_eq!(a.pattern_times.p3, 0.0);
}

#[test]
fn seamless_pipeline_matches_manual_composition() {
    use cuz_checker::core::pipeline::assess_compression;
    let field = AppDataset::Miranda.generate_field(1, &GenOptions::scaled(16));
    let sz = SzCompressor::new(ErrorBound::Rel(1e-3));
    let cfg = AssessConfig::default();
    let one_call = assess_compression(&field.data, &sz, &CuZc::default(), &cfg).unwrap();
    let (dec, stats) = sz.roundtrip(&field.data).unwrap();
    let manual = CuZc::default().assess(&field.data, &dec, &cfg).unwrap();
    assert_eq!(
        one_call.report.scalar(Metric::Psnr),
        manual.report.scalar(Metric::Psnr)
    );
    // Ratio is deterministic; throughputs are wall-clock and only checked
    // for presence.
    assert_eq!(
        one_call.report.scalar(Metric::CompressionRatio).unwrap(),
        stats.ratio()
    );
}

#[test]
fn four_d_grids_partition_by_hyperslab() {
    use cuz_checker::tensor::{Shape, Tensor};
    // The launch grid for 4D fields is nz x nw; verify the profile agrees.
    let t = Tensor::from_fn(Shape::d4(16, 12, 6, 4), |[x, y, z, w]| {
        (x + y) as f32 * 0.1 + z as f32 + w as f32 * 10.0
    });
    let dec = t.map(|v| v + 1e-3);
    let a = CuZc::default()
        .assess(&t, &dec, &AssessConfig::default())
        .unwrap();
    let p1 = a
        .runs
        .iter()
        .find(|r| r.pattern == cuz_checker::core::Pattern::GlobalReduction)
        .unwrap();
    assert_eq!(p1.grid_blocks, 6 * 4);
}
