//! The paper's §IV-B correctness claim, systematized: on every dataset,
//! all four executors (serial reference, ompZC, moZC, cuZC) produce the
//! same value for every metric — scalars to floating-point reduction
//! tolerance, histograms bit-identically.

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::{Assessment, Executor, MultiCuZc};
use cuz_checker::core::{CuZc, Metric, MoZc, OmpZc, SerialZc};
use cuz_checker::data::{AppDataset, GenOptions};

fn close(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true; // covers equal infinities
    }
    (a - b).abs() <= tol * b.abs().max(1e-30)
}

fn assess_all(ds: AppDataset, field_idx: usize) -> Vec<(&'static str, Assessment)> {
    let gen = GenOptions::scaled(16);
    let field = ds.generate_field(field_idx, &gen);
    let sz = SzCompressor::new(ErrorBound::Rel(1e-3));
    let (dec, _) = sz.roundtrip(&field.data).expect("roundtrip");
    let cfg = AssessConfig {
        max_lag: 4,
        ..Default::default()
    }; // keep the matrix fast; lags beyond 4 exercised elsewhere
    vec![
        ("serial", SerialZc.assess(&field.data, &dec, &cfg).unwrap()),
        (
            "ompZC",
            OmpZc::default().assess(&field.data, &dec, &cfg).unwrap(),
        ),
        (
            "moZC",
            MoZc::default().assess(&field.data, &dec, &cfg).unwrap(),
        ),
        (
            "cuZC",
            CuZc::default().assess(&field.data, &dec, &cfg).unwrap(),
        ),
        // The §VI multi-GPU executor must stay value-equivalent at every
        // device count (the grid partition may not change any metric).
        (
            "cuZC-multi2",
            MultiCuZc::nvlink(2)
                .assess(&field.data, &dec, &cfg)
                .unwrap(),
        ),
        (
            "cuZC-multi3",
            MultiCuZc::pcie(3).assess(&field.data, &dec, &cfg).unwrap(),
        ),
        (
            "cuZC-multi4",
            MultiCuZc::nvlink(4)
                .assess(&field.data, &dec, &cfg)
                .unwrap(),
        ),
    ]
}

#[test]
fn all_executors_agree_on_every_dataset() {
    for ds in AppDataset::ALL {
        let runs = assess_all(ds, 0);
        let (ref_name, reference) = &runs[0];
        assert_eq!(*ref_name, "serial");
        for (name, a) in &runs[1..] {
            // Every scalar metric of the registry.
            for m in Metric::ALL {
                let (r, v) = (reference.report.scalar(m), a.report.scalar(m));
                match (r, v) {
                    (None, None) => {}
                    (Some(r), Some(v)) => {
                        assert!(
                            close(v, r, 1e-6),
                            "{} {name}: {m} = {v} vs serial {r}",
                            ds.name()
                        );
                    }
                    _ => panic!("{} {name}: {m} presence mismatch", ds.name()),
                }
            }
            // Histograms are integer counts — must match exactly.
            let (rh, ah) = (
                reference.report.histograms.as_ref().unwrap(),
                a.report.histograms.as_ref().unwrap(),
            );
            assert_eq!(
                rh.err_pdf.counts(),
                ah.err_pdf.counts(),
                "{} {name}",
                ds.name()
            );
            assert_eq!(
                rh.rel_pdf.counts(),
                ah.rel_pdf.counts(),
                "{} {name}",
                ds.name()
            );
            assert_eq!(
                rh.value_hist.counts(),
                ah.value_hist.counts(),
                "{} {name}",
                ds.name()
            );
            // Full autocorrelation series.
            let (rs, as_) = (
                &reference.report.stencil.as_ref().unwrap().autocorr.values,
                &a.report.stencil.as_ref().unwrap().autocorr.values,
            );
            for (lag, (r, v)) in rs.iter().zip(as_.iter()).enumerate() {
                assert!(
                    (r - v).abs() < 1e-7,
                    "{} {name}: autocorr lag {} = {v} vs {r}",
                    ds.name(),
                    lag + 1
                );
            }
            // SSIM window counts must agree exactly.
            assert_eq!(
                reference.report.ssim.unwrap().windows,
                a.report.ssim.unwrap().windows,
                "{} {name}: window count",
                ds.name()
            );
        }
    }
}

#[test]
fn paper_iv_b_spot_check_first_hurricane_field() {
    // The paper's example: "with first field of the Hurricane dataset, both
    // cuZ-Checker and the CPU-based Z-checker yield [the same] first-order
    // derivative result".
    let runs = assess_all(AppDataset::Hurricane, 0);
    let serial = runs[0].1.report.stencil.as_ref().unwrap().avg_gradient_orig;
    let cuzc = runs[3].1.report.stencil.as_ref().unwrap().avg_gradient_orig;
    assert!(close(cuzc, serial, 1e-9), "{cuzc} vs {serial}");
}

#[test]
fn identical_inputs_yield_perfect_scores_everywhere() {
    let field = AppDataset::Nyx.generate_field(1, &GenOptions::scaled(16));
    let cfg = AssessConfig::default();
    for ex in [
        Box::new(SerialZc) as Box<dyn Executor>,
        Box::new(OmpZc::default()),
        Box::new(MoZc::default()),
        Box::new(CuZc::default()),
        Box::new(MultiCuZc::nvlink(3)),
    ] {
        let a = ex.assess(&field.data, &field.data, &cfg).unwrap();
        assert_eq!(
            a.report.scalar(Metric::Psnr).unwrap(),
            f64::INFINITY,
            "{}",
            ex.name()
        );
        assert_eq!(a.report.scalar(Metric::Mse).unwrap(), 0.0);
        assert!((a.report.scalar(Metric::Ssim).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(a.report.scalar(Metric::PearsonCorrelation).unwrap(), 1.0);
    }
}

#[test]
fn two_dimensional_cesm_fields_agree_across_executors() {
    // The 2D analysis mode: dimension-aware stencils and square SSIM
    // windows must agree between the serial reference and every other
    // executor (and actually produce stencil output, unlike a naive 3D-only
    // implementation would).
    let runs = assess_all(AppDataset::CesmAtm, 0);
    let serial = &runs[0].1;
    let st = serial.report.stencil.as_ref().unwrap();
    assert!(
        st.avg_gradient_orig > 0.0,
        "2D derivatives must be computed"
    );
    assert!(
        serial.report.ssim.unwrap().windows > 0,
        "2D SSIM windows must exist"
    );
    for (name, a) in &runs[1..] {
        for m in [
            Metric::Psnr,
            Metric::Ssim,
            Metric::Derivative1,
            Metric::Autocorrelation,
            Metric::DerivativeMse,
        ] {
            let (r, v) = (
                serial.report.scalar(m).unwrap(),
                a.report.scalar(m).unwrap(),
            );
            let ok = (r == v) || (r - v).abs() <= 1e-6 * r.abs().max(1e-20);
            assert!(ok, "CESM 2D {name}: {m} = {v} vs serial {r}");
        }
        assert_eq!(
            serial.report.ssim.unwrap().windows,
            a.report.ssim.unwrap().windows,
            "CESM 2D {name}: window count"
        );
    }
}

#[test]
fn one_dimensional_fields_agree_across_executors() {
    use cuz_checker::tensor::{Shape, Tensor};
    let orig = Tensor::from_fn(Shape::d1(3000), |[x, ..]| {
        (x as f32 * 0.01).sin() * 5.0 + (x as f32 * 0.003).cos()
    });
    let sz = SzCompressor::new(ErrorBound::Rel(1e-3));
    let (dec, _) = sz.roundtrip(&orig).unwrap();
    let cfg = AssessConfig {
        max_lag: 3,
        ..Default::default()
    };
    let s = SerialZc.assess(&orig, &dec, &cfg).unwrap();
    assert!(s.report.stencil.as_ref().unwrap().avg_gradient_orig > 0.0);
    for ex in [
        Box::new(OmpZc::default()) as Box<dyn Executor>,
        Box::new(MoZc::default()),
        Box::new(CuZc::default()),
    ] {
        let a = ex.assess(&orig, &dec, &cfg).unwrap();
        for m in [Metric::Psnr, Metric::Derivative1, Metric::Autocorrelation] {
            let (r, v) = (s.report.scalar(m).unwrap(), a.report.scalar(m).unwrap());
            let ok = (r == v) || (r - v).abs() <= 1e-6 * r.abs().max(1e-20);
            assert!(ok, "1D {}: {m} = {v} vs serial {r}", ex.name());
        }
    }
}
