//! Shape-fidelity gates for the regenerated figures: the orderings and
//! bands the paper reports must hold when the harness runs (reduced scale,
//! modeled at full shapes). These are the automated version of
//! EXPERIMENTS.md's paper-vs-measured table.

use cuz_checker::core::Pattern;
use cuz_checker::data::AppDataset;
use zc_bench::paper;
use zc_bench::{assess_dataset, DatasetResult, HarnessOpts};

fn results() -> Vec<DatasetResult> {
    let opts = HarnessOpts {
        scale: 16,
        max_fields: Some(1),
        ..Default::default()
    };
    AppDataset::ALL
        .iter()
        .map(|&ds| assess_dataset(ds, &opts))
        .collect()
}

#[test]
fn fig10_overall_ordering_and_bands() {
    for r in results() {
        let vs_omp = r.ompzc.total() / r.cuzc.total();
        let vs_mo = r.mozc.total() / r.cuzc.total();
        // Strict ordering: cuZC beats moZC beats ompZC.
        assert!(vs_mo > 1.0, "{}: cuZC must beat moZC", r.dataset.name());
        assert!(
            vs_omp > vs_mo,
            "{}: ompZC must be slowest",
            r.dataset.name()
        );
        // Band membership with slack (coarser functional scale than the
        // calibrated fig10 run).
        assert!(
            paper::OVERALL_VS_OMPZC.contains_loose(vs_omp, 2.0),
            "{}: overall vs ompZC {vs_omp}",
            r.dataset.name()
        );
        assert!(
            paper::OVERALL_VS_MOZC.contains_loose(vs_mo, 2.0),
            "{}: overall vs moZC {vs_mo}",
            r.dataset.name()
        );
    }
}

#[test]
fn fig11_throughput_hierarchy() {
    for r in results() {
        for p in [
            Pattern::GlobalReduction,
            Pattern::Stencil,
            Pattern::SlidingWindow,
        ] {
            let om = r.throughput_gbs(&r.ompzc, p);
            let mo = r.throughput_gbs(&r.mozc, p);
            let cu = r.throughput_gbs(&r.cuzc, p);
            assert!(
                cu > mo && mo > om,
                "{} {:?}: hierarchy violated ({om} / {mo} / {cu})",
                r.dataset.name(),
                p
            );
        }
        // Pattern-1 throughput dwarfs pattern-3 (Fig. 11's GB/s vs MB/s).
        let p1 = r.throughput_gbs(&r.cuzc, Pattern::GlobalReduction);
        let p3 = r.throughput_gbs(&r.cuzc, Pattern::SlidingWindow);
        assert!(p1 > 50.0 * p3, "{}: p1 {p1} vs p3 {p3}", r.dataset.name());
    }
}

#[test]
fn fig12_pattern_bands_loose() {
    for r in results() {
        let p1 = r.ompzc.p1 / r.cuzc.p1;
        let p2 = r.ompzc.p2 / r.cuzc.p2;
        let p3 = r.ompzc.p3 / r.cuzc.p3;
        assert!(
            paper::P1_VS_OMPZC.contains_loose(p1, 2.0),
            "{}: p1 {p1}",
            r.dataset.name()
        );
        assert!(
            paper::P2_VS_OMPZC.contains_loose(p2, 2.0),
            "{}: p2 {p2}",
            r.dataset.name()
        );
        assert!(
            paper::P3_VS_OMPZC.contains_loose(p3, 2.0),
            "{}: p3 {p3}",
            r.dataset.name()
        );
        // Pattern-1 speedups are far larger than overall (paper Takeaway 1).
        let overall = r.ompzc.total() / r.cuzc.total();
        assert!(
            p1 > 3.0 * overall,
            "{}: p1 {p1} vs overall {overall}",
            r.dataset.name()
        );
        // moZC bands.
        let m1 = r.mozc.p1 / r.cuzc.p1;
        let m2 = r.mozc.p2 / r.cuzc.p2;
        let m3 = r.mozc.p3 / r.cuzc.p3;
        assert!(
            paper::P1_VS_MOZC.contains_loose(m1, 2.0),
            "{}: m1 {m1}",
            r.dataset.name()
        );
        assert!(
            paper::P2_VS_MOZC.contains_loose(m2, 1.5),
            "{}: m2 {m2}",
            r.dataset.name()
        );
        assert!(
            paper::P3_VS_MOZC.contains_loose(m3, 1.5),
            "{}: m3 {m3}",
            r.dataset.name()
        );
    }
}

#[test]
fn table2_per_dataset_structure() {
    use cuz_checker::core::AssessConfig;
    use zc_bench::fullscale::full_iters_per_thread;
    let cfg = AssessConfig::default();
    // Pattern-1 iters: Miranda smallest, SCALE-LETKF largest (Table II).
    let it =
        |ds: AppDataset| full_iters_per_thread(Pattern::GlobalReduction, ds.full_shape(), &cfg);
    assert!(it(AppDataset::Miranda) < it(AppDataset::Hurricane));
    assert!(it(AppDataset::Hurricane) <= it(AppDataset::Nyx));
    assert!(it(AppDataset::Nyx) < it(AppDataset::ScaleLetkf));
    // Pattern-3: NYX deepest (observation (iii)).
    let p3 = |ds: AppDataset| full_iters_per_thread(Pattern::SlidingWindow, ds.full_shape(), &cfg);
    for other in [
        AppDataset::Hurricane,
        AppDataset::ScaleLetkf,
        AppDataset::Miranda,
    ] {
        assert!(p3(AppDataset::Nyx) > p3(other));
    }
}
