//! Cross-crate property tests: executor equivalence and assessment-level
//! invariants hold on arbitrary generated inputs, not just fixtures.

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::Executor;
use cuz_checker::core::{CuZc, Metric, MoZc, OmpZc, SerialZc};
use cuz_checker::tensor::{Shape, Tensor};
use proptest::prelude::*;

fn shapes() -> impl Strategy<Value = Shape> {
    ((8usize..32), (8usize..24), (8usize..16)).prop_map(|(x, y, z)| Shape::d3(x, y, z))
}

fn fields() -> impl Strategy<Value = Tensor<f32>> {
    (shapes(), any::<u32>(), -100.0f32..100.0).prop_map(|(shape, seed, offset)| {
        let s = seed as f32 * 1e-6;
        Tensor::from_fn(shape, |[x, y, z, _]| {
            offset + ((x as f32 + s) * 0.31).sin() * 8.0 + (y as f32 * 0.17).cos() * 3.0
                - (z as f32 * 0.23).sin()
        })
    })
}

fn small_cfg() -> AssessConfig {
    AssessConfig { max_lag: 3, bins: 32, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn executors_agree_on_arbitrary_fields(orig in fields(), eb_exp in -5i32..-2) {
        let eb = 10f64.powi(eb_exp);
        let sz = SzCompressor::new(ErrorBound::Rel(eb));
        let (dec, _) = sz.roundtrip(&orig).unwrap();
        let cfg = small_cfg();
        let s = SerialZc.assess(&orig, &dec, &cfg).unwrap();
        for ex in [
            Box::new(OmpZc::default()) as Box<dyn Executor>,
            Box::new(MoZc::default()),
            Box::new(CuZc::default()),
        ] {
            let a = ex.assess(&orig, &dec, &cfg).unwrap();
            for m in [Metric::Psnr, Metric::Mse, Metric::Ssim, Metric::AvgError,
                      Metric::MaxAbsError, Metric::PearsonCorrelation, Metric::Autocorrelation] {
                let (r, v) = (s.report.scalar(m).unwrap(), a.report.scalar(m).unwrap());
                let ok = (r == v) || (r - v).abs() <= 1e-6 * r.abs().max(1e-20);
                prop_assert!(ok, "{}: {m} = {v} vs serial {r}", ex.name());
            }
        }
    }

    #[test]
    fn assessment_invariants_hold(orig in fields(), eb_exp in -5i32..-2) {
        let eb = 10f64.powi(eb_exp);
        let sz = SzCompressor::new(ErrorBound::Rel(eb));
        let (dec, _) = sz.roundtrip(&orig).unwrap();
        let a = CuZc::default().assess(&orig, &dec, &small_cfg()).unwrap();
        let rep = &a.report;
        // Structural invariants of any valid assessment:
        prop_assert!(rep.scalar(Metric::Mse).unwrap() >= 0.0);
        prop_assert!(rep.scalar(Metric::MinError).unwrap()
            <= rep.scalar(Metric::MaxError).unwrap());
        prop_assert!(rep.scalar(Metric::AvgError).unwrap()
            <= rep.scalar(Metric::MaxAbsError).unwrap() + 1e-15);
        let ssim = rep.scalar(Metric::Ssim).unwrap();
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&ssim), "ssim {ssim}");
        let pearson = rep.scalar(Metric::PearsonCorrelation).unwrap();
        prop_assert!((-1.0..=1.0).contains(&pearson));
        let nrmse = rep.scalar(Metric::Nrmse).unwrap();
        prop_assert!(nrmse >= 0.0);
        // Error PDF mass equals element count.
        let h = rep.histograms.as_ref().unwrap();
        prop_assert_eq!(h.err_pdf.total(), orig.len() as u64);
        // Entropy of a 32-bin histogram is at most 5 bits.
        prop_assert!(rep.entropy_bits().unwrap() <= 5.0 + 1e-12);
    }

    #[test]
    fn tighter_bounds_never_reduce_psnr(orig in fields()) {
        let cfg = small_cfg();
        let mut prev = f64::NEG_INFINITY;
        for eb in [1e-2, 1e-3, 1e-4] {
            let sz = SzCompressor::new(ErrorBound::Rel(eb));
            let (dec, _) = sz.roundtrip(&orig).unwrap();
            let a = SerialZc.assess(&orig, &dec, &cfg).unwrap();
            let psnr = a.report.scalar(Metric::Psnr).unwrap();
            prop_assert!(psnr >= prev - 1e-9, "eb {eb}: psnr {psnr} < {prev}");
            prev = psnr;
        }
    }

    #[test]
    fn counters_scale_with_metric_selection(orig in fields()) {
        use cuz_checker::core::metrics::{MetricSelection, Pattern};
        let dec = orig.map(|v| v + 1e-3);
        let full = CuZc::default().assess(&orig, &dec, &small_cfg()).unwrap();
        let p1_only = AssessConfig {
            metrics: MetricSelection::pattern(Pattern::GlobalReduction),
            ..small_cfg()
        };
        let partial = CuZc::default().assess(&orig, &dec, &p1_only).unwrap();
        prop_assert!(partial.counters.launches < full.counters.launches);
        prop_assert!(partial.counters.global_read_bytes < full.counters.global_read_bytes);
        prop_assert!(partial.modeled_seconds < full.modeled_seconds);
    }
}
