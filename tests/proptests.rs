//! Cross-crate property tests: executor equivalence and assessment-level
//! invariants hold on arbitrary generated inputs, not just fixtures.
//! Cases come from a deterministic inline RNG (no external
//! property-testing dependency).

use cuz_checker::compress::{Compressor, ErrorBound, SzCompressor};
use cuz_checker::core::config::AssessConfig;
use cuz_checker::core::exec::Executor;
use cuz_checker::core::{CuZc, Metric, MoZc, OmpZc, SerialZc};
use cuz_checker::tensor::{Shape, Tensor};

/// Deterministic splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * (((self.next() >> 11) as f64 / (1u64 << 53) as f64) as f32)
    }

    fn field(&mut self) -> Tensor<f32> {
        let shape = Shape::d3(self.usize(8, 32), self.usize(8, 24), self.usize(8, 16));
        let s = (self.next() as u32) as f32 * 1e-6;
        let offset = self.f32(-100.0, 100.0);
        Tensor::from_fn(shape, |[x, y, z, _]| {
            offset + ((x as f32 + s) * 0.31).sin() * 8.0 + (y as f32 * 0.17).cos() * 3.0
                - (z as f32 * 0.23).sin()
        })
    }
}

fn small_cfg() -> AssessConfig {
    AssessConfig {
        max_lag: 3,
        bins: 32,
        ..Default::default()
    }
}

#[test]
fn executors_agree_on_arbitrary_fields() {
    let mut rng = Rng(0xe8a9);
    for case in 0..8 {
        let orig = rng.field();
        let eb = 10f64.powi(-(rng.usize(3, 6) as i32));
        let sz = SzCompressor::new(ErrorBound::Rel(eb));
        let (dec, _) = sz.roundtrip(&orig).unwrap();
        let cfg = small_cfg();
        let s = SerialZc.assess(&orig, &dec, &cfg).unwrap();
        for ex in [
            Box::new(OmpZc::default()) as Box<dyn Executor>,
            Box::new(MoZc::default()),
            Box::new(CuZc::default()),
        ] {
            let a = ex.assess(&orig, &dec, &cfg).unwrap();
            for m in [
                Metric::Psnr,
                Metric::Mse,
                Metric::Ssim,
                Metric::AvgError,
                Metric::MaxAbsError,
                Metric::PearsonCorrelation,
                Metric::Autocorrelation,
            ] {
                let (r, v) = (s.report.scalar(m).unwrap(), a.report.scalar(m).unwrap());
                let ok = (r == v) || (r - v).abs() <= 1e-6 * r.abs().max(1e-20);
                assert!(ok, "case {case} {}: {m} = {v} vs serial {r}", ex.name());
            }
        }
    }
}

#[test]
fn assessment_invariants_hold() {
    let mut rng = Rng(0x1457);
    for case in 0..8 {
        let orig = rng.field();
        let eb = 10f64.powi(-(rng.usize(3, 6) as i32));
        let sz = SzCompressor::new(ErrorBound::Rel(eb));
        let (dec, _) = sz.roundtrip(&orig).unwrap();
        let a = CuZc::default().assess(&orig, &dec, &small_cfg()).unwrap();
        let rep = &a.report;
        // Structural invariants of any valid assessment:
        assert!(rep.scalar(Metric::Mse).unwrap() >= 0.0, "case {case}");
        assert!(
            rep.scalar(Metric::MinError).unwrap() <= rep.scalar(Metric::MaxError).unwrap(),
            "case {case}"
        );
        assert!(
            rep.scalar(Metric::AvgError).unwrap()
                <= rep.scalar(Metric::MaxAbsError).unwrap() + 1e-15,
            "case {case}"
        );
        let ssim = rep.scalar(Metric::Ssim).unwrap();
        assert!(
            (-1.0..=1.0 + 1e-12).contains(&ssim),
            "case {case}: ssim {ssim}"
        );
        let pearson = rep.scalar(Metric::PearsonCorrelation).unwrap();
        assert!((-1.0..=1.0).contains(&pearson), "case {case}");
        let nrmse = rep.scalar(Metric::Nrmse).unwrap();
        assert!(nrmse >= 0.0, "case {case}");
        // Error PDF mass equals element count.
        let h = rep.histograms.as_ref().unwrap();
        assert_eq!(h.err_pdf.total(), orig.len() as u64, "case {case}");
        // Entropy of a 32-bin histogram is at most 5 bits.
        assert!(rep.entropy_bits().unwrap() <= 5.0 + 1e-12, "case {case}");
    }
}

#[test]
fn tighter_bounds_never_reduce_psnr() {
    let mut rng = Rng(0x7169);
    for case in 0..8 {
        let orig = rng.field();
        let cfg = small_cfg();
        let mut prev = f64::NEG_INFINITY;
        for eb in [1e-2, 1e-3, 1e-4] {
            let sz = SzCompressor::new(ErrorBound::Rel(eb));
            let (dec, _) = sz.roundtrip(&orig).unwrap();
            let a = SerialZc.assess(&orig, &dec, &cfg).unwrap();
            let psnr = a.report.scalar(Metric::Psnr).unwrap();
            assert!(
                psnr >= prev - 1e-9,
                "case {case} eb {eb}: psnr {psnr} < {prev}"
            );
            prev = psnr;
        }
    }
}

#[test]
fn counters_scale_with_metric_selection() {
    use cuz_checker::core::metrics::{MetricSelection, Pattern};
    let mut rng = Rng(0xc583);
    for case in 0..8 {
        let orig = rng.field();
        let dec = orig.map(|v| v + 1e-3);
        let full = CuZc::default().assess(&orig, &dec, &small_cfg()).unwrap();
        let p1_only = AssessConfig {
            metrics: MetricSelection::pattern(Pattern::GlobalReduction),
            ..small_cfg()
        };
        let partial = CuZc::default().assess(&orig, &dec, &p1_only).unwrap();
        assert!(
            partial.counters.launches < full.counters.launches,
            "case {case}"
        );
        assert!(
            partial.counters.global_read_bytes < full.counters.global_read_bytes,
            "case {case}"
        );
        assert!(
            partial.modeled_seconds < full.modeled_seconds,
            "case {case}"
        );
    }
}
